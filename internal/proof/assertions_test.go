package proof

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// example52Left builds the left state of Example 5.2: thread 1 writes
// x (relaxed) then y (release); thread 2 performs an acquiring read of
// y. The rf into the acquiring read synchronises, so thread 2 holds
// x =_2 2.
func example52Left(t *testing.T) *core.State {
	t.Helper()
	s := core.Init(map[event.Var]event.Val{"x": 7, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	s, wx, err := s.StepWrite(1, false, "x", 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	s, wy, err := s.StepWrite(1, true, "y", 1, iy)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = s.StepRead(2, true, "y", wy.Tag)
	if err != nil {
		t.Fatal(err)
	}
	_ = wx
	return s
}

// example52Right: thread 1 reads x (relaxed, unsynchronised) from the
// last write, then writes y (release); thread 2 acquires y. Thread 2
// does NOT get a determinate value for x, because the last write to x
// is not in its happens-before cone.
func example52Right(t *testing.T) *core.State {
	t.Helper()
	s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	// Thread 3 writes x = 2 (the "last write" of the example, not
	// synchronised with anyone).
	s, wx, err := s.StepWrite(3, false, "x", 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 1 reads it relaxed.
	s, _, err = s.StepRead(1, false, "x", wx.Tag)
	if err != nil {
		t.Fatal(err)
	}
	s, wy, err := s.StepWrite(1, true, "y", 1, iy)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = s.StepRead(2, true, "y", wy.Tag)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExample52DeterminateValue(t *testing.T) {
	left := example52Left(t)
	if !DV(left, 2, "x", 2) {
		t.Fatal("left state: thread 2 should hold x =_2 2")
	}
	// Condition (3) of Definition 5.1 follows: observable singleton.
	if !observableSingleton(left, 2, "x") {
		t.Fatal("left state: thread 2 should observe exactly the last write")
	}

	right := example52Right(t)
	if DV(right, 2, "x", 2) {
		t.Fatal("right state: thread 2 must NOT hold x =_2 2 (no hb)")
	}
	// Yet the only observable write to x is the last one — the
	// example's point: the singleton does not imply the assertion.
	if !observableSingleton(right, 2, "x") {
		t.Fatal("right state: thread 2 should still observe only the last write")
	}
}

func TestDVBasics(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"x": 3})
	// Initially every thread holds x = 3 (rule Init).
	for th := event.Thread(1); th <= 3; th++ {
		if !DV(s, th, "x", 3) {
			t.Fatalf("thread %d misses initial determinate value", th)
		}
		if DV(s, th, "x", 4) {
			t.Fatal("wrong value accepted")
		}
	}
	if DV(s, 1, "nope", 0) {
		t.Fatal("unknown variable accepted")
	}
	v, ok := DVValue(s, 1, "x")
	if !ok || v != 3 {
		t.Fatalf("DVValue = %d, %v", v, ok)
	}
	// After thread 1 writes x := 9, thread 1 holds x =_1 9; thread 2
	// holds nothing for x.
	ix, _ := s.InitialFor("x")
	s1, _, _ := s.StepWrite(1, false, "x", 9, ix)
	if !DV(s1, 1, "x", 9) {
		t.Fatal("writer misses own value")
	}
	if _, ok := DVValue(s1, 2, "x"); ok {
		t.Fatal("non-synchronised thread has determinate value")
	}
}

func TestVOBasics(t *testing.T) {
	s := example52Left(t)
	// Last write to x (thread 1's) happens-before last write to y
	// (same thread, sb).
	if !VO(s, "x", "y") {
		t.Fatal("x ↪ y should hold")
	}
	if VO(s, "y", "x") {
		t.Fatal("y ↪ x must not hold")
	}
	if VO(s, "x", "nope") {
		t.Fatal("unknown variable accepted")
	}
}

func TestAssertionInterfaces(t *testing.T) {
	s := example52Left(t)
	var a Assertion = DVAssertion{T: 2, X: "x", V: 2}
	if !a.Holds(s) || a.String() != "x =_2 2" {
		t.Fatalf("DVAssertion: holds=%v s=%q", a.Holds(s), a)
	}
	var b Assertion = VOAssertion{X: "x", Y: "y"}
	if !b.Holds(s) || b.String() != "x ↪ y" {
		t.Fatalf("VOAssertion: holds=%v s=%q", b.Holds(s), b)
	}
}

// randomWalk produces a random reachable transition sequence and calls
// visit on every transition.
func randomWalk(t *testing.T, rng *rand.Rand, steps int, visit func(Transition)) {
	t.Helper()
	vars := []event.Var{"x", "y", "z"}
	s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
	for i := 0; i < steps; i++ {
		th := event.Thread(1 + rng.Intn(3))
		x := vars[rng.Intn(len(vars))]
		var (
			ns  *core.State
			e   event.Event
			m   event.Tag
			err error
		)
		switch rng.Intn(4) {
		case 0:
			obs := s.ObservableFor(th, x)
			if len(obs) == 0 {
				continue
			}
			m = obs[rng.Intn(len(obs))]
			ns, e, err = s.StepRead(th, rng.Intn(2) == 0, x, m)
		case 1, 2:
			pts := s.InsertionPointsFor(th, x)
			if len(pts) == 0 {
				continue
			}
			m = pts[rng.Intn(len(pts))]
			ns, e, err = s.StepWrite(th, rng.Intn(2) == 0, x, event.Val(rng.Intn(4)), m)
		case 3:
			pts := s.InsertionPointsFor(th, x)
			if len(pts) == 0 {
				continue
			}
			m = pts[rng.Intn(len(pts))]
			ns, e, err = s.StepRMW(th, x, event.Val(rng.Intn(4)), m)
		}
		if err != nil {
			t.Fatal(err)
		}
		visit(Transition{Before: s, M: m, E: e, After: ns})
		s = ns
	}
}

// Lemma 5.3 on random transitions.
func TestLemma53Random(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		randomWalk(t, rng, 10, func(tr Transition) {
			if !tr.E.IsRead() {
				return
			}
			for v := event.Val(0); v < 4; v++ {
				if !Lemma53(tr.Before, tr.E, v) {
					t.Fatalf("Lemma 5.3 violated at %v value %d", tr.E, v)
				}
			}
		})
	}
}

// Lemma 5.4 on random states.
func TestLemma54Random(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 40; trial++ {
		randomWalk(t, rng, 10, func(tr Transition) {
			for _, x := range []event.Var{"x", "y", "z"} {
				if !Lemma54(tr.After, 1, 2, x) || !Lemma54(tr.After, 2, 3, x) {
					t.Fatalf("Lemma 5.4 violated for %s", x)
				}
			}
		})
	}
}

// Lemma 5.6 on random transitions.
func TestLemma56Random(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 40; trial++ {
		randomWalk(t, rng, 10, func(tr Transition) {
			if !Lemma56(tr.Before, tr.M, tr.E) {
				t.Fatalf("Lemma 5.6 violated at %v", tr.E)
			}
		})
	}
}

// Definition 5.1's condition (3) is a consequence of (1)+(2): a
// determinate value implies the observable singleton.
func TestDVImpliesObservableSingleton(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		randomWalk(t, rng, 10, func(tr Transition) {
			for _, x := range []event.Var{"x", "y", "z"} {
				for th := event.Thread(1); th <= 3; th++ {
					if _, ok := DVValue(tr.After, th, x); ok {
						if !observableSingleton(tr.After, th, x) {
							t.Fatalf("x=%s t=%d: DV without singleton", x, th)
						}
					}
				}
			}
		})
	}
}
