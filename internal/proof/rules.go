package proof

import (
	"repro/internal/core"
	"repro/internal/event"
)

// This file implements the inference rules of Figure 4. Every rule is
// phrased over a transition (σ, m, e, σ') of the RA event semantics:
// given that its premises hold, the conclusion is an assertion valid
// in σ'. The Check* functions return (premisesHold, conclusionHolds);
// soundness (Lemmas B.1–B.3) is the implication premises → conclusion,
// which the test suite verifies on randomly generated transitions.

// Transition is one step σ --(m,e)-->_RA σ' of the event semantics.
type Transition struct {
	Before *core.State
	M      event.Tag // the observed write m
	E      event.Event
	After  *core.State
}

// RuleInit (Init): in an initial state, every thread holds a
// determinate value for every variable.
func RuleInit(s0 *core.State, t event.Thread, x event.Var) (premises, conclusion bool) {
	// Premise: s0 is initial — no non-init events.
	for _, e := range s0.Events() {
		if !e.IsInit() {
			return false, false
		}
	}
	last, ok := s0.Last(x)
	if !ok {
		return false, false
	}
	return true, DV(s0, t, x, s0.Event(last).WrVal())
}

// RuleModLast (ModLast): a write to x observing σ.last(x) establishes
// x =_tid(e) wrval(e) in σ'.
func RuleModLast(tr Transition, x event.Var) (premises, conclusion bool) {
	e := tr.E
	if !(e.IsWrite() && e.Var() == x) {
		return false, false
	}
	last, ok := tr.Before.Last(x)
	if !ok || tr.M != last {
		return false, false
	}
	return true, DV(tr.After, e.TID, x, e.WrVal())
}

// RuleTransfer (Transfer): an acquiring read of the last write to y,
// when x ↪ y and x =_t v, copies x =_tid(e) v to the reading thread.
// The synchronisation premise (m, e) ∈ sw is checked in σ'.
func RuleTransfer(tr Transition, t event.Thread, x event.Var, v event.Val) (premises, conclusion bool) {
	e := tr.E
	y := e.Var()
	if !VO(tr.Before, x, y) || !DV(tr.Before, t, x, v) {
		return false, false
	}
	last, ok := tr.Before.Last(y)
	if !ok || tr.M != last {
		return false, false
	}
	if !tr.After.SW().Has(int(tr.M), int(e.Tag)) {
		return false, false
	}
	return true, DV(tr.After, e.TID, x, v)
}

// RuleUOrd (UOrd): an update of y reading a releasing write preserves
// x ↪ y.
func RuleUOrd(tr Transition, x event.Var) (premises, conclusion bool) {
	e := tr.E
	y := e.Var()
	if !e.IsUpdate() {
		return false, false
	}
	if !tr.Before.Event(tr.M).Releasing() {
		return false, false
	}
	if !VO(tr.Before, x, y) {
		return false, false
	}
	return true, VO(tr.After, x, y)
}

// RuleNoMod (NoMod): an event that does not write x preserves
// x =_t v.
func RuleNoMod(tr Transition, t event.Thread, x event.Var, v event.Val) (premises, conclusion bool) {
	e := tr.E
	if e.IsWrite() && e.Var() == x {
		return false, false
	}
	if !DV(tr.Before, t, x, v) {
		return false, false
	}
	return true, DV(tr.After, t, x, v)
}

// RuleAcqRd (AcqRd): an acquiring read of the last write to x, that
// write being releasing, establishes x =_tid(e) rdval(e).
//
// The rule applies to pure acquiring reads, not updates: an update
// makes its own write the new last modification, so the determinate
// value it establishes is wrval(e), which is rule ModLast's
// conclusion. (The paper's convention RdA ⊇ U would otherwise make
// this rule conclude x = rdval(e) for updates, contradicting the
// freshly written value.)
func RuleAcqRd(tr Transition, x event.Var) (premises, conclusion bool) {
	e := tr.E
	if !(e.Acquiring() && e.IsRead() && !e.IsUpdate() && e.Var() == x) {
		return false, false
	}
	m := tr.Before.Event(tr.M)
	if !m.Releasing() {
		return false, false
	}
	last, ok := tr.Before.Last(x)
	if !ok || tr.M != last {
		return false, false
	}
	return true, DV(tr.After, e.TID, x, e.RdVal())
}

// RuleWOrd (WOrd): a write to y by a thread holding a determinate
// value for x (x ≠ y), observing the last write to y, establishes
// x ↪ y.
func RuleWOrd(tr Transition, x event.Var) (premises, conclusion bool) {
	e := tr.E
	y := e.Var()
	if x == y || !e.IsWrite() {
		return false, false
	}
	if _, ok := DVValue(tr.Before, e.TID, x); !ok {
		return false, false
	}
	last, ok := tr.Before.Last(y)
	if !ok || tr.M != last {
		return false, false
	}
	return true, VO(tr.After, x, y)
}

// RuleNoModOrd (NoModOrd): an event writing neither x nor y preserves
// x ↪ y.
func RuleNoModOrd(tr Transition, x, y event.Var) (premises, conclusion bool) {
	e := tr.E
	if e.IsWrite() && (e.Var() == x || e.Var() == y) {
		return false, false
	}
	if !VO(tr.Before, x, y) {
		return false, false
	}
	return true, VO(tr.After, x, y)
}
