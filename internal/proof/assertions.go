// Package proof implements the paper's verification method (§5): the
// determinate-value and variable-ordering assertion language
// (Definitions 5.1 and 5.5), the inference rules of Figure 4, the
// supporting lemmas (5.3, 5.4, 5.6), and the Peterson invariants
// (4)–(10) whose inductiveness proves mutual exclusion (Theorem 5.8).
//
// The paper proves rule soundness by hand (Appendix B); here every
// rule is a checkable premise→conclusion implication, and the test
// suite validates each on randomly generated reachable transitions, as
// well as checking the Peterson invariants on every reachable
// configuration of the bounded interpreted semantics.
package proof

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
)

// DV reports the determinate-value assertion x =σ_t v (Definition
// 5.1): v is the value of the mo-last write to x, and that write lies
// in the happens-before cone of t (it is initial, by t, or
// happens-before an event of t). Under this condition a read of x by
// t can only return v.
func DV(s *core.State, t event.Thread, x event.Var, v event.Val) bool {
	last, ok := s.Last(x)
	if !ok {
		return false
	}
	if s.Event(last).WrVal() != v { // condition (1)
		return false
	}
	return s.InHBCone(t, last) // condition (2)
}

// DVValue returns the value v for which x =σ_t v holds, if any.
func DVValue(s *core.State, t event.Thread, x event.Var) (event.Val, bool) {
	last, ok := s.Last(x)
	if !ok {
		return 0, false
	}
	v := s.Event(last).WrVal()
	if DV(s, t, x, v) {
		return v, true
	}
	return 0, false
}

// VO reports the variable-ordering assertion x ↪σ y (Definition 5.5):
// the last write to x happens-before the last write to y.
func VO(s *core.State, x, y event.Var) bool {
	lx, okx := s.Last(x)
	ly, oky := s.Last(y)
	if !okx || !oky {
		return false
	}
	return s.HBHas(lx, ly)
}

// Assertion is a state predicate of the proof calculus.
type Assertion interface {
	Holds(s *core.State) bool
	String() string
}

// DVAssertion is x =_t v.
type DVAssertion struct {
	T event.Thread
	X event.Var
	V event.Val
}

// Holds implements Assertion.
func (a DVAssertion) Holds(s *core.State) bool { return DV(s, a.T, a.X, a.V) }

func (a DVAssertion) String() string {
	return fmt.Sprintf("%s =_%d %d", a.X, a.T, a.V)
}

// VOAssertion is x ↪ y.
type VOAssertion struct {
	X, Y event.Var
}

// Holds implements Assertion.
func (a VOAssertion) Holds(s *core.State) bool { return VO(s, a.X, a.Y) }

func (a VOAssertion) String() string {
	return fmt.Sprintf("%s ↪ %s", a.X, a.Y)
}

// Lemma 5.1 condition (3): a determinate value implies the thread can
// observe exactly the last write of x.
func observableSingleton(s *core.State, t event.Thread, x event.Var) bool {
	last, ok := s.Last(x)
	if !ok {
		return false
	}
	obs := s.ObservableFor(t, x)
	return len(obs) == 1 && obs[0] == last
}

// Lemma53 (Determinate-Value Read): on a READ or RMW transition whose
// thread holds var(e) =σ_tid(e) v, the value read is v. The function
// reports whether the lemma's conclusion holds for the given
// transition — soundness tests assert it always does.
func Lemma53(before *core.State, e event.Event, v event.Val) bool {
	if !DV(before, e.TID, e.Var(), v) {
		return true // premise false: lemma vacuously holds
	}
	return e.RdVal() == v
}

// Lemma54 (Determinate-Value Agreement): two determinate values for
// the same variable agree across threads.
func Lemma54(s *core.State, t1, t2 event.Thread, x event.Var) bool {
	v1, ok1 := DVValue(s, t1, x)
	v2, ok2 := DVValue(s, t2, x)
	if !ok1 || !ok2 {
		return true
	}
	return v1 == v2
}

// Lemma56 (Last Modification Transition): if the transition's thread
// holds a determinate value for var(e), or e is a modification of an
// update-only variable, the observed write is σ.last(var(e)).
//
// Note the restriction of the second disjunct to modifications
// (e ∈ Wr): pure reads may observe covered writes (rule READ does not
// exclude CW_σ), so a read of an update-only variable can observe a
// non-last write. The paper states the lemma for arbitrary
// transitions, but its justification ("because m is not covered") and
// both of its uses (the swap in Case 2 of the Peterson proof and the
// update-only argument of §5.1) apply to modifications only.
func Lemma56(before *core.State, m event.Tag, e event.Event) bool {
	x := e.Var()
	_, hasDV := DVValue(before, e.TID, x)
	updOnlyMod := e.IsWrite() && before.UpdateOnly(x)
	if !hasDV && !updOnlyMod {
		return true // premise false
	}
	last, ok := before.Last(x)
	return ok && m == last
}
