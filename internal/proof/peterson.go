package proof

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/lang"
)

// This file implements the Peterson verification of §5.2: the program
// counter abstraction P.pc_t, the invariants (4)–(10) of Lemma D.1,
// and the mutual-exclusion consequence (Theorem 5.8). The paper proves
// invariance by hand, case-splitting on transitions; the test suite
// checks every invariant on every reachable configuration of the
// bounded interpreted semantics, and checks Theorem 5.8's derivation
// (invariant (9) plus Lemma 5.4 refute a double critical section).

// PC returns the paper's program-counter abstraction for a Peterson
// thread's residual command:
//
//	2 — about to set its flag           (line 2)
//	3 — about to swap turn              (line 3)
//	4 — in the busy-wait loop           (line 4)
//	5 — in the critical section         (line 5)
//	6 — about to reset its flag         (line 6)
//	7 — terminated
func PC(c lang.Com) int {
	switch x := c.(type) {
	case lang.Skip:
		return 7
	case lang.Seq:
		if p := PC(x.C1); p != 7 {
			return p
		}
		return PC(x.C2)
	case lang.Assign:
		// Classification works across the weakened variants too: an
		// assignment to turn is line 3 (the swap's replacement), a
		// flag reset (literal false, release or relaxed) is line 6,
		// and the initial flag raise is line 2.
		if x.X == "turn" {
			return 3
		}
		if lit, ok := x.E.(lang.Lit); ok && lit.V == event.False {
			return 6
		}
		return 2
	case lang.Swap:
		return 3
	case lang.While:
		return 4
	case lang.Label:
		return 5
	default:
		panic(fmt.Sprintf("proof: unclassifiable command %T", c))
	}
}

// flagVar returns flag_t. The invariants evaluate it on every explored
// configuration, so the two Peterson flags are pre-built rather than
// formatted each time.
func flagVar(t event.Thread) event.Var {
	switch t {
	case 1:
		return "flag1"
	case 2:
		return "flag2"
	}
	return event.Var(fmt.Sprintf("flag%d", t))
}

// PetersonInvariant identifies one of the invariants (4)–(10).
type PetersonInvariant struct {
	ID    int
	Name  string
	Holds func(c core.Config) bool
}

// PetersonInvariants returns the seven invariants of Lemma D.1,
// indexed (4)–(10) as in §5.2. other(t) is written t̂.
func PetersonInvariants() []PetersonInvariant {
	other := func(t event.Thread) event.Thread { return 3 - t }
	threads := []event.Thread{1, 2}

	return []PetersonInvariant{
		{4, "turn is update-only", func(c core.Config) bool {
			return c.S.UpdateOnly("turn")
		}},
		{5, "turn =_1 2 ∨ turn =_2 1", func(c core.Config) bool {
			return DV(c.S, 1, "turn", 2) || DV(c.S, 2, "turn", 1)
		}},
		{6, "pc_t ∈ {3,4,5,6} ⇒ flag_t =_t true", func(c core.Config) bool {
			for _, t := range threads {
				pc := PC(c.P.Thread(t))
				if pc >= 3 && pc <= 6 && !DV(c.S, t, flagVar(t), event.True) {
					return false
				}
			}
			return true
		}},
		{7, "pc_t ∈ {4,5,6} ⇒ flag_t ↪ turn", func(c core.Config) bool {
			for _, t := range threads {
				pc := PC(c.P.Thread(t))
				if pc >= 4 && pc <= 6 && !VO(c.S, flagVar(t), "turn") {
					return false
				}
			}
			return true
		}},
		{8, "pc_t, pc_t̂ ∈ {4,5,6} ⇒ flag_t̂ =_t true ∨ turn =_t̂ t", func(c core.Config) bool {
			for _, t := range threads {
				th := other(t)
				pct := PC(c.P.Thread(t))
				pcth := PC(c.P.Thread(th))
				if pct >= 4 && pct <= 6 && pcth >= 4 && pcth <= 6 {
					if !DV(c.S, t, flagVar(th), event.True) &&
						!DV(c.S, th, "turn", event.Val(t)) {
						return false
					}
				}
			}
			return true
		}},
		{9, "pc_t = 5 ∧ pc_t̂ ∈ {4,5,6} ⇒ turn =_t̂ t", func(c core.Config) bool {
			for _, t := range threads {
				th := other(t)
				pcth := PC(c.P.Thread(th))
				if PC(c.P.Thread(t)) == 5 && pcth >= 4 && pcth <= 6 {
					if !DV(c.S, th, "turn", event.Val(t)) {
						return false
					}
				}
			}
			return true
		}},
		{10, "pc_t = 2 ⇒ flag_t =_t false", func(c core.Config) bool {
			for _, t := range threads {
				if PC(c.P.Thread(t)) == 2 && !DV(c.S, t, flagVar(t), event.False) {
					return false
				}
			}
			return true
		}},
	}
}

// petersonInvariants is the memoised invariant table:
// CheckPetersonInvariants runs on every explored configuration, and
// rebuilding the closures per call dominated its allocation profile.
var petersonInvariants = PetersonInvariants()

// CheckPetersonInvariants evaluates all invariants on a configuration
// and returns the IDs of those violated (empty when all hold).
func CheckPetersonInvariants(c core.Config) []int {
	var bad []int
	for _, inv := range petersonInvariants {
		if !inv.Holds(c) {
			bad = append(bad, inv.ID)
		}
	}
	return bad
}

// Theorem58 is the mutual-exclusion theorem: pc_1 ≠ 5 ∨ pc_2 ≠ 5.
// DeriveTheorem58 carries out the paper's two-line derivation on a
// configuration satisfying invariant (9): a double critical section
// would give turn =_1 2 and turn =_2 1, contradicting Lemma 5.4.
func Theorem58(c core.Config) bool {
	return PC(c.P.Thread(1)) != 5 || PC(c.P.Thread(2)) != 5
}

// DeriveTheorem58 replays the proof of Theorem 5.8 on a configuration:
// if invariant (9) holds, a double critical section is impossible —
// it would require turn =_2 1 and turn =_1 2 simultaneously, which
// Lemma 5.4 (determinate values of one variable agree) refutes. The
// function reports whether the derivation applies and yields mutual
// exclusion; it returns false exactly when the premise (invariant 9)
// fails, making the paper's proof inapplicable.
func DeriveTheorem58(c core.Config) bool {
	inv9 := PetersonInvariants()[5]
	if inv9.ID != 9 {
		panic("proof: invariant table out of order")
	}
	if !inv9.Holds(c) {
		return false // premise missing: the caller's invariant proof failed
	}
	// With (9), pc_1 = pc_2 = 5 would give turn =_2 1 ∧ turn =_1 2,
	// contradicting Lemma 5.4 — so the conclusion must already be
	// visible in the configuration.
	return Theorem58(c)
}
