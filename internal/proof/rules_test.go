package proof

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// Soundness of the Figure 4 rules (Lemmas B.1–B.3), checked on random
// reachable transitions: whenever a rule's premises hold, its
// conclusion holds in the successor state.

var ruleVars = []event.Var{"x", "y", "z"}

func TestRuleInitSound(t *testing.T) {
	s0 := core.Init(map[event.Var]event.Val{"x": 1, "y": 2})
	for th := event.Thread(1); th <= 3; th++ {
		for _, x := range []event.Var{"x", "y"} {
			prem, concl := RuleInit(s0, th, x)
			if !prem {
				t.Fatalf("Init premises fail on initial state (%d, %s)", th, x)
			}
			if !concl {
				t.Fatalf("Init conclusion fails (%d, %s)", th, x)
			}
		}
	}
	// Premise must fail on non-initial states.
	ix, _ := s0.InitialFor("x")
	s1, _, _ := s0.StepWrite(1, false, "x", 5, ix)
	if prem, _ := RuleInit(s1, 1, "x"); prem {
		t.Fatal("Init premises hold on non-initial state")
	}
}

// checkRule sweeps a premise/conclusion pair over random transitions.
func checkRule(t *testing.T, seed int64, name string,
	apply func(tr Transition) []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	premCount := 0
	for trial := 0; trial < 60; trial++ {
		randomWalk(t, rng, 9, func(tr Transition) {
			for _, ok := range apply(tr) {
				if ok {
					premCount++
				}
			}
		})
	}
	if premCount == 0 {
		t.Fatalf("rule %s: premises never fired — vacuous test", name)
	}
	t.Logf("rule %s: %d premise instances checked", name, premCount)
}

func TestRuleModLastSound(t *testing.T) {
	checkRule(t, 101, "ModLast", func(tr Transition) []bool {
		var fired []bool
		for _, x := range ruleVars {
			prem, concl := RuleModLast(tr, x)
			if prem && !concl {
				t.Fatalf("ModLast unsound at %v (x=%s)", tr.E, x)
			}
			fired = append(fired, prem)
		}
		return fired
	})
}

func TestRuleTransferSound(t *testing.T) {
	checkRule(t, 102, "Transfer", func(tr Transition) []bool {
		var fired []bool
		for _, x := range ruleVars {
			for th := event.Thread(1); th <= 3; th++ {
				for v := event.Val(0); v < 4; v++ {
					prem, concl := RuleTransfer(tr, th, x, v)
					if prem && !concl {
						t.Fatalf("Transfer unsound at %v (t=%d x=%s v=%d)", tr.E, th, x, v)
					}
					fired = append(fired, prem)
				}
			}
		}
		return fired
	})
}

func TestRuleUOrdSound(t *testing.T) {
	checkRule(t, 103, "UOrd", func(tr Transition) []bool {
		var fired []bool
		for _, x := range ruleVars {
			prem, concl := RuleUOrd(tr, x)
			if prem && !concl {
				t.Fatalf("UOrd unsound at %v (x=%s)", tr.E, x)
			}
			fired = append(fired, prem)
		}
		return fired
	})
}

func TestRuleNoModSound(t *testing.T) {
	checkRule(t, 104, "NoMod", func(tr Transition) []bool {
		var fired []bool
		for _, x := range ruleVars {
			for th := event.Thread(1); th <= 3; th++ {
				for v := event.Val(0); v < 4; v++ {
					prem, concl := RuleNoMod(tr, th, x, v)
					if prem && !concl {
						t.Fatalf("NoMod unsound at %v (t=%d x=%s v=%d)", tr.E, th, x, v)
					}
					fired = append(fired, prem)
				}
			}
		}
		return fired
	})
}

func TestRuleAcqRdSound(t *testing.T) {
	checkRule(t, 105, "AcqRd", func(tr Transition) []bool {
		var fired []bool
		for _, x := range ruleVars {
			prem, concl := RuleAcqRd(tr, x)
			if prem && !concl {
				t.Fatalf("AcqRd unsound at %v (x=%s)", tr.E, x)
			}
			fired = append(fired, prem)
		}
		return fired
	})
}

func TestRuleWOrdSound(t *testing.T) {
	checkRule(t, 106, "WOrd", func(tr Transition) []bool {
		var fired []bool
		for _, x := range ruleVars {
			prem, concl := RuleWOrd(tr, x)
			if prem && !concl {
				t.Fatalf("WOrd unsound at %v (x=%s)", tr.E, x)
			}
			fired = append(fired, prem)
		}
		return fired
	})
}

func TestRuleNoModOrdSound(t *testing.T) {
	checkRule(t, 107, "NoModOrd", func(tr Transition) []bool {
		var fired []bool
		for _, x := range ruleVars {
			for _, y := range ruleVars {
				prem, concl := RuleNoModOrd(tr, x, y)
				if prem && !concl {
					t.Fatalf("NoModOrd unsound at %v (x=%s y=%s)", tr.E, x, y)
				}
				fired = append(fired, prem)
			}
		}
		return fired
	})
}

// The Transfer rule in action — the exact scenario of Example 5.2
// left: thread 2's acquiring read copies thread 1's x =_1 2 over the
// x ↪ y ordering.
func TestTransferScenario(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"x": 7, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	s, _, _ = s.StepWrite(1, false, "x", 2, ix)
	s, wy, _ := s.StepWrite(1, true, "y", 1, iy)

	// Before the read: x =_1 2 and x ↪ y hold, x =_2 2 does not.
	if !DV(s, 1, "x", 2) || !VO(s, "x", "y") || DV(s, 2, "x", 2) {
		t.Fatal("pre-state assertions wrong")
	}
	after, e, err := s.StepRead(2, true, "y", wy.Tag)
	if err != nil {
		t.Fatal(err)
	}
	tr := Transition{Before: s, M: wy.Tag, E: e, After: after}
	prem, concl := RuleTransfer(tr, 1, "x", 2)
	if !prem {
		t.Fatal("Transfer premises should hold")
	}
	if !concl {
		t.Fatal("Transfer conclusion should hold")
	}
	if !DV(after, 2, "x", 2) {
		t.Fatal("assertion not copied to thread 2")
	}
}

// A relaxed read does not transfer the assertion (premise (m,e) ∈ sw
// fails).
func TestTransferNeedsSynchronisation(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"x": 7, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	s, _, _ = s.StepWrite(1, false, "x", 2, ix)
	s, wy, _ := s.StepWrite(1, true, "y", 1, iy)
	after, e, _ := s.StepRead(2, false, "y", wy.Tag) // relaxed!
	tr := Transition{Before: s, M: wy.Tag, E: e, After: after}
	if prem, _ := RuleTransfer(tr, 1, "x", 2); prem {
		t.Fatal("Transfer premises must fail without synchronisation")
	}
	if DV(after, 2, "x", 2) {
		t.Fatal("assertion leaked through a relaxed read")
	}
}
