package proof

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/model"
)

// This file packages the paper's verification method (§5) as reusable
// machinery: a specification is a list of guarded assertions — "when
// the configuration satisfies this guard (typically a program-counter
// condition), this assertion holds" — checked inductively over every
// reachable configuration of the bounded interpreted semantics. The
// Peterson invariants (4)–(10) and the message-passing property of
// Example 5.7 are both instances.

// UpdateOnlyAssertion asserts that a variable is update-only (§5.1) —
// the side condition Lemma 5.6 needs for swap-based synchronisation.
type UpdateOnlyAssertion struct {
	X event.Var
}

// Holds implements Assertion.
func (a UpdateOnlyAssertion) Holds(s *core.State) bool { return s.UpdateOnly(a.X) }

func (a UpdateOnlyAssertion) String() string {
	return fmt.Sprintf("update-only(%s)", a.X)
}

// Annotation is one guarded proof obligation.
type Annotation struct {
	// Name labels the obligation in reports.
	Name string
	// When guards the obligation; nil means "always".
	When func(c core.Config) bool
	// Then is the assertion that must hold whenever When does.
	Then Assertion
}

// holds evaluates the obligation on a configuration.
func (a Annotation) holds(c core.Config) bool {
	if a.When != nil && !a.When(c) {
		return true
	}
	return a.Then.Holds(c.S)
}

// SpecResult reports an annotation check.
type SpecResult struct {
	// Failed is the first violated annotation, nil when all hold.
	Failed *Annotation
	// At is a configuration witnessing the violation.
	At *core.Config
	// Explored counts configurations checked; Truncated reports
	// whether the bound cut the search.
	Explored  int
	Truncated bool
}

// OK reports whether every annotation held on every reachable
// configuration.
func (r SpecResult) OK() bool { return r.Failed == nil }

// CheckAnnotations explores the configuration space and verifies every
// annotation at every reachable configuration, stopping at the first
// violation.
func CheckAnnotations(cfg core.Config, anns []Annotation, opts explore.Options) SpecResult {
	var out SpecResult
	o := opts
	// The property may be evaluated concurrently by a parallel
	// explorer, so it only reports the verdict; the failing annotation
	// is recovered from the violating configuration afterwards.
	o.Property = func(c model.Config) bool {
		cc := c.(core.Config)
		for i := range anns {
			if !anns[i].holds(cc) {
				return false
			}
		}
		return true
	}
	res := explore.Run(cfg, o)
	out.Explored = res.Explored
	out.Truncated = res.Truncated
	if res.Violation != nil {
		bad := res.Violation.(core.Config)
		out.At = &bad
		for i := range anns {
			if !anns[i].holds(bad) {
				out.Failed = &anns[i]
				break
			}
		}
	}
	return out
}

// AtPC builds a guard testing a thread's program counter (per the PC
// classifier) against a set of lines.
func AtPC(t event.Thread, lines ...int) func(core.Config) bool {
	want := map[int]bool{}
	for _, l := range lines {
		want[l] = true
	}
	return func(c core.Config) bool {
		return want[PC(c.P.Thread(t))]
	}
}

// Both conjoins two guards.
func Both(f, g func(core.Config) bool) func(core.Config) bool {
	return func(c core.Config) bool { return f(c) && g(c) }
}

// disjunction of assertions, for obligations like invariant (5).
type orAssertion struct {
	a, b Assertion
}

// Either asserts a ∨ b.
func Either(a, b Assertion) Assertion { return orAssertion{a: a, b: b} }

// Holds implements Assertion.
func (o orAssertion) Holds(s *core.State) bool {
	return o.a.Holds(s) || o.b.Holds(s)
}

func (o orAssertion) String() string {
	return "(" + o.a.String() + " ∨ " + o.b.String() + ")"
}

// PetersonAnnotations expresses the invariants (4)–(10) of §5.2 in the
// generic annotation language; CheckAnnotations over these is
// equivalent to CheckPetersonInvariants over the exploration.
func PetersonAnnotations() []Annotation {
	other := func(t event.Thread) event.Thread { return 3 - t }
	var anns []Annotation

	anns = append(anns, Annotation{
		Name: "(4) turn update-only",
		Then: UpdateOnlyAssertion{X: "turn"},
	})
	anns = append(anns, Annotation{
		Name: "(5) turn =_1 2 ∨ turn =_2 1",
		Then: Either(
			DVAssertion{T: 1, X: "turn", V: 2},
			DVAssertion{T: 2, X: "turn", V: 1},
		),
	})
	for _, t := range []event.Thread{1, 2} {
		t := t
		th := other(t)
		anns = append(anns,
			Annotation{
				Name: fmt.Sprintf("(6) t%d", t),
				When: AtPC(t, 3, 4, 5, 6),
				Then: DVAssertion{T: t, X: flagVar(t), V: event.True},
			},
			Annotation{
				Name: fmt.Sprintf("(7) t%d", t),
				When: AtPC(t, 4, 5, 6),
				Then: VOAssertion{X: flagVar(t), Y: "turn"},
			},
			Annotation{
				Name: fmt.Sprintf("(8) t%d", t),
				When: Both(AtPC(t, 4, 5, 6), AtPC(th, 4, 5, 6)),
				Then: Either(
					DVAssertion{T: t, X: flagVar(th), V: event.True},
					DVAssertion{T: th, X: "turn", V: event.Val(t)},
				),
			},
			Annotation{
				Name: fmt.Sprintf("(9) t%d", t),
				When: Both(AtPC(t, 5), AtPC(th, 4, 5, 6)),
				Then: DVAssertion{T: th, X: "turn", V: event.Val(t)},
			},
			Annotation{
				Name: fmt.Sprintf("(10) t%d", t),
				When: AtPC(t, 2),
				Then: DVAssertion{T: t, X: flagVar(t), V: event.False},
			},
		)
	}
	return anns
}
