package proof

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
)

func TestUpdateOnlyAssertion(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"turn": 1})
	a := UpdateOnlyAssertion{X: "turn"}
	if !a.Holds(s) || a.String() != "update-only(turn)" {
		t.Fatalf("holds=%v s=%q", a.Holds(s), a)
	}
	w0, _ := s.Last("turn")
	s1, _, _ := s.StepWrite(1, false, "turn", 2, w0)
	if a.Holds(s1) {
		t.Fatal("plain write should break update-only")
	}
}

func TestEitherAssertion(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"x": 1})
	good := DVAssertion{T: 1, X: "x", V: 1}
	bad := DVAssertion{T: 1, X: "x", V: 9}
	if !Either(bad, good).Holds(s) || !Either(good, bad).Holds(s) {
		t.Fatal("disjunction broken")
	}
	if Either(bad, bad).Holds(s) {
		t.Fatal("false ∨ false held")
	}
	if !strings.Contains(Either(good, bad).String(), "∨") {
		t.Fatal("rendering")
	}
}

func TestGuardHelpers(t *testing.T) {
	p, vars := litmus.Peterson()
	c := core.NewConfig(p, vars)
	if !AtPC(1, 2)(c) || AtPC(1, 5)(c) {
		t.Fatal("AtPC wrong at initial configuration")
	}
	if !Both(AtPC(1, 2), AtPC(2, 2))(c) {
		t.Fatal("Both wrong")
	}
	if Both(AtPC(1, 2), AtPC(2, 5))(c) {
		t.Fatal("Both ignored second guard")
	}
}

// The generic engine verifies Peterson exactly as the bespoke checker
// does.
func TestPetersonViaAnnotations(t *testing.T) {
	p, vars := litmus.Peterson()
	res := CheckAnnotations(core.NewConfig(p, vars), PetersonAnnotations(),
		explore.Options{MaxEvents: 11})
	if !res.OK() {
		t.Fatalf("annotation %q failed at:\n%s", res.Failed.Name, res.At.P)
	}
	if res.Explored < 300 {
		t.Fatalf("exploration too small: %d", res.Explored)
	}
}

// The engine localises failures: on the weak-turn variant it names the
// first broken obligation, which must be invariant (4).
func TestWeakTurnAnnotationDiagnosis(t *testing.T) {
	p, vars := litmus.PetersonWeakTurn()
	res := CheckAnnotations(core.NewConfig(p, vars), PetersonAnnotations(),
		explore.Options{MaxEvents: 11})
	if res.OK() {
		t.Fatal("weak-turn variant passed the annotations")
	}
	if !strings.Contains(res.Failed.Name, "(4)") {
		t.Fatalf("first failure = %q, want invariant (4)", res.Failed.Name)
	}
	if res.At == nil {
		t.Fatal("no witness configuration")
	}
}

// A user-level spec beyond Peterson: the message-passing property of
// Example 5.7 phrased as annotations over a custom guard.
func TestMessagePassingViaAnnotations(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(
			lang.AssignC("d", lang.V(5)),
			lang.AssignRelC("f", lang.V(1)),
		),
		lang.SeqC(
			lang.WhileC(lang.Eq(lang.XA("f"), lang.V(0)), lang.SkipC()),
			lang.LabelC("consume", lang.AssignC("r", lang.X("d"))),
		),
	}
	vars := map[event.Var]event.Val{"d": 0, "f": 0, "r": 0}
	anns := []Annotation{
		{
			Name: "payload determinate past the loop",
			When: func(c core.Config) bool {
				return lang.AtLabel(c.P.Thread(2)) == "consume"
			},
			Then: DVAssertion{T: 2, X: "d", V: 5},
		},
		{
			Name: "producer post-condition",
			When: func(c core.Config) bool {
				return lang.Terminated(c.P.Thread(1))
			},
			Then: Either(VOAssertion{X: "d", Y: "f"}, DVAssertion{T: 1, X: "d", V: 5}),
		},
	}
	res := CheckAnnotations(core.NewConfig(p, vars), anns, explore.Options{MaxEvents: 12})
	if !res.OK() {
		t.Fatalf("annotation %q failed", res.Failed.Name)
	}
}

// Unguarded annotations apply everywhere.
func TestUnguardedAnnotation(t *testing.T) {
	p := lang.Prog{lang.SwapC("t", 1)}
	res := CheckAnnotations(core.NewConfig(p, map[event.Var]event.Val{"t": 0}),
		[]Annotation{{Name: "t update-only", Then: UpdateOnlyAssertion{X: "t"}}},
		explore.Options{MaxEvents: 6})
	if !res.OK() {
		t.Fatal("update-only failed on a swap-only program")
	}
	// A false unguarded annotation is caught at the initial state.
	res2 := CheckAnnotations(core.NewConfig(p, map[event.Var]event.Val{"t": 0}),
		[]Annotation{{Name: "impossible", Then: DVAssertion{T: 1, X: "t", V: 42}}},
		explore.Options{MaxEvents: 6})
	if res2.OK() || res2.Failed.Name != "impossible" {
		t.Fatal("false annotation not caught")
	}
}
