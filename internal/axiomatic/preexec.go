package axiomatic

import (
	"sort"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/lang"
)

// This file implements the pre-execution semantics of §4.1 and the
// two-step "generate-and-test" procedure the axiomatic model
// prescribes: (1) enumerate candidate pre-executions of a program in
// which reads return arbitrary (domain-bounded) values, then (2)
// justify each with rf/mo relations satisfying the axioms. It is both
// the reference point for the soundness/completeness theorems and the
// baseline against which the operational semantics' on-the-fly read
// validation is benchmarked.

// ValueDomain returns every value a read of the program could be
// justified with: the initial values plus every literal written by
// the program, closed under the arithmetic the program applies to
// loaded values. Writes are the only producers of values in the
// language, but a written expression like x^A + 1 derives a value
// outside the literal set — the random-program fuzzer surfaced
// exactly this gap, with operational executions writing values the
// candidate enumeration could not guess. The closure runs one round
// per arithmetic node — each node fires once per evaluation of its
// expression, so straight-line derivation chains (more nodes, more
// rounds) are covered exactly. Loop-carried accumulation (a node
// re-evaluated per unfolding, like a counter increment) is NOT fully
// covered: any static round count would be; callers enumerating
// loopy programs remain bound-relative, as they already are through
// their maxEvents cut. The domain is capped at domainCap values
// (derivers applied in collection order over a sorted base, so the
// truncation is deterministic) — non-literal ⊗ non-literal nodes
// close pairwise and would otherwise grow doubly-exponentially.
func ValueDomain(p lang.Prog, vars map[event.Var]event.Val) []event.Val {
	seen := map[event.Val]bool{}
	for _, v := range vars {
		seen[v] = true
	}
	// arith collects the value-deriving operator applications: +lit,
	// -lit (in either operand order) and unary negation. comparisons
	// and logical operators only ever derive 0 or 1.
	type deriver struct {
		op  lang.BinOp
		lit event.Val
		neg bool // unary negation
		any bool // non-literal ⊗ non-literal: pairwise closure
	}
	var arith []deriver
	bool01 := false
	var walkCom func(c lang.Com)
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.Lit:
			seen[x.V] = true
		case lang.IdxLoad:
			walkExpr(x.I)
		case lang.Un:
			if x.Op == lang.OpNeg {
				arith = append(arith, deriver{neg: true})
			} else {
				bool01 = true
			}
			walkExpr(x.E)
		case lang.Bin:
			switch x.Op {
			case lang.OpAdd, lang.OpSub:
				if l, ok := x.L.(lang.Lit); ok {
					arith = append(arith, deriver{op: x.Op, lit: l.V})
				} else if r, ok := x.R.(lang.Lit); ok {
					arith = append(arith, deriver{op: x.Op, lit: r.V})
				} else {
					arith = append(arith, deriver{op: x.Op, any: true})
				}
			default:
				bool01 = true
			}
			walkExpr(x.L)
			walkExpr(x.R)
		}
	}
	walkCom = func(c lang.Com) {
		switch x := c.(type) {
		case lang.Assign:
			if x.Idx != nil {
				walkExpr(x.Idx)
			}
			walkExpr(x.E)
		case lang.Swap:
			seen[x.N] = true
		case lang.Cas:
			if x.Idx != nil {
				walkExpr(x.Idx)
			}
			walkExpr(x.Old)
			walkExpr(x.New)
			walkCom(x.Then)
			walkCom(x.Else)
		case lang.Seq:
			walkCom(x.C1)
			walkCom(x.C2)
		case lang.If:
			walkExpr(x.B)
			walkCom(x.Then)
			walkCom(x.Else)
		case lang.While:
			walkExpr(x.Guard)
			walkCom(x.Body)
		case lang.Label:
			walkCom(x.C)
		}
	}
	for _, c := range p {
		walkCom(c)
	}
	if bool01 {
		seen[0] = true
		seen[1] = true
	}
	// Close: one round per collected node (a node fires once per
	// evaluation; deeper chains consist of more nodes and get more
	// rounds), stopping deterministically at the cap.
	const domainCap = 512
	add := func(v event.Val) {
		if len(seen) < domainCap {
			seen[v] = true
		}
	}
	for round := 0; round < len(arith) && len(seen) < domainCap; round++ {
		base := make([]event.Val, 0, len(seen))
		for v := range seen {
			base = append(base, v)
		}
		sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
		for _, d := range arith {
			for _, v := range base {
				switch {
				case d.neg:
					add(-v)
				case d.any:
					for _, w := range base {
						if d.op == lang.OpAdd {
							add(v + w)
						} else {
							add(v - w)
						}
					}
				case d.op == lang.OpAdd:
					add(v + d.lit)
					add(d.lit + v)
				default: // OpSub, literal on one side
					add(v - d.lit)
					add(d.lit - v)
				}
			}
		}
	}
	out := make([]event.Val, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PreExecutions enumerates the complete pre-executions of the program
// (every thread terminated), with read values drawn from domain.
// Interleavings that produce identical per-thread event sequences are
// deduplicated, since the pre-execution state (D, sb) does not depend
// on the interleaving (Proposition 4.1). Runs exceeding maxEvents
// events are abandoned; truncated reports whether any run was cut off.
func PreExecutions(p lang.Prog, vars map[event.Var]event.Val, domain []event.Val, maxEvents int, yield func(Exec) bool) (truncated bool) {
	type key struct{ prog, trace string }
	seen := map[key]bool{}
	stopped := false

	perThread := make([][]event.Action, len(p))

	traceKey := func() string {
		s := ""
		for _, evs := range perThread {
			for _, a := range evs {
				s += a.String() + ";"
			}
			s += "|"
		}
		return s
	}

	build := func() Exec {
		// Tags: initials (sorted by var) then thread 1's events, then
		// thread 2's, ... — per-thread tag order equals sb order.
		names := make([]event.Var, 0, len(vars))
		for x := range vars {
			names = append(names, x)
		}
		sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
		var events []event.Event
		for _, x := range names {
			events = append(events, event.Event{
				Tag: event.Tag(len(events)), Act: event.Wr(x, vars[x]), TID: event.InitThread,
			})
		}
		nInit := len(events)
		threadStart := make([]int, len(p))
		for ti, evs := range perThread {
			threadStart[ti] = len(events)
			for _, a := range evs {
				events = append(events, event.Event{
					Tag: event.Tag(len(events)), Act: a, TID: event.Thread(ti + 1),
				})
			}
		}
		x := NewExec(events)
		for i := 0; i < nInit; i++ {
			for j := nInit; j < len(events); j++ {
				x.SB.Add(i, j)
			}
		}
		for ti := range perThread {
			start := threadStart[ti]
			for i := 0; i < len(perThread[ti]); i++ {
				for j := i + 1; j < len(perThread[ti]); j++ {
					x.SB.Add(start+i, start+j)
				}
			}
		}
		return x
	}

	count := func() int {
		n := 0
		for _, evs := range perThread {
			n += len(evs)
		}
		return n
	}

	var dfs func(prog lang.Prog)
	dfs = func(prog lang.Prog) {
		if stopped {
			return
		}
		k := key{prog.String(), traceKey()}
		if seen[k] {
			return
		}
		seen[k] = true

		if prog.Terminated() {
			if !yield(build()) {
				stopped = true
			}
			return
		}
		if count() >= maxEvents {
			truncated = true
			return
		}
		for _, ps := range lang.ProgSteps(prog) {
			ti := int(ps.T) - 1
			switch ps.S.Kind {
			case lang.StepSilent:
				dfs(prog.WithThread(ps.T, ps.S.Apply(0)))
			case lang.StepWrite:
				a, _ := ps.S.Action(0)
				perThread[ti] = append(perThread[ti], a)
				dfs(prog.WithThread(ps.T, ps.S.Apply(0)))
				perThread[ti] = perThread[ti][:len(perThread[ti])-1]
			case lang.StepRead, lang.StepUpdate, lang.StepCas:
				// A CAS's Action internally picks its face per value:
				// updRA when v equals the expected value, rdA otherwise.
				for _, v := range domain {
					a, _ := ps.S.Action(v)
					perThread[ti] = append(perThread[ti], a)
					dfs(prog.WithThread(ps.T, ps.S.Apply(v)))
					perThread[ti] = perThread[ti][:len(perThread[ti])-1]
					if stopped {
						return
					}
				}
			}
			if stopped {
				return
			}
		}
	}
	dfs(p)
	return truncated
}

// ValidExecutions computes the set of valid complete executions of the
// program the axiomatic way: enumerate pre-executions, justify each,
// and deduplicate by canonical signature. This is the paper's post-hoc
// procedure (and the benchmark baseline).
func ValidExecutions(p lang.Prog, vars map[event.Var]event.Val, maxEvents int) map[string]Exec {
	domain := ValueDomain(p, vars)
	out := map[string]Exec{}
	PreExecutions(p, vars, domain, maxEvents, func(pre Exec) bool {
		pre.Justifications(func(just Exec) bool {
			out[just.CanonicalSignature()] = just
			return true
		})
		return true
	})
	return out
}

// OperationalExecutions computes the same set through the operational
// semantics of internal/core: explore every interpreted run to
// termination and collect the final states. Theorems 4.4 and 4.8 say
// the result equals ValidExecutions; the test suite asserts exactly
// that, and the benchmark harness compares the costs.
func OperationalExecutions(p lang.Prog, vars map[event.Var]event.Val) map[string]Exec {
	out := map[string]Exec{}
	seen := map[fingerprint.FP]bool{}
	var dfs func(core.Config)
	dfs = func(cfg core.Config) {
		k := cfg.Fingerprint()
		if seen[k] {
			return
		}
		seen[k] = true
		succ := cfg.Successors()
		if len(succ) == 0 && cfg.Terminated() {
			x := FromState(cfg.S)
			out[x.CanonicalSignature()] = x
			return
		}
		for _, s := range succ {
			dfs(s.C)
		}
	}
	dfs(core.NewConfig(p, vars))
	return out
}
