package axiomatic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// State.Fingerprint and Exec.Fingerprint share one canonical encoding,
// so an operationally built state and its FromState image must
// fingerprint identically — the binary analogue of the replay tests'
// CanonicalSignature comparisons.
func TestStateAndExecFingerprintsAgree(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	s, w, err := s.StepWrite(1, true, "x", 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ = s.StepRead(2, true, "x", w.Tag)
	s, u, _ := s.StepRMW(2, "y", 7, iy)
	s, _, _ = s.StepRMW(1, "y", 8, u.Tag)

	x := FromState(s)
	if got, want := x.Fingerprint(), s.Fingerprint(); got != want {
		t.Fatalf("Exec fingerprint %x%x != State fingerprint %x%x",
			got.Hi, got.Lo, want.Hi, want.Lo)
	}
	if x.CanonicalSignature() != s.CanonicalSignature() {
		t.Fatal("canonical signatures diverge between State and Exec")
	}
}
