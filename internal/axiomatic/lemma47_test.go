package axiomatic

import (
	"testing"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/relation"
)

// Lemma 4.7: for a pre-execution run reaching (D_k, sb_k), every
// linearization of sb_k is itself realisable as a pre-execution run
// reaching the same state. Because the pre-execution state is
// determined by the per-thread event sequences (interleaving
// independence, Proposition 4.1), we check that every linearization of
// sb over the non-initial events (1) respects per-thread order and (2)
// replays to an identical execution.
func TestLemma47AllLinearizationsRealisable(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignC("y", lang.V(2))),
		lang.AssignC("z", lang.X("x")),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "z": 0}
	domain := ValueDomain(p, vars)

	checked := 0
	PreExecutions(p, vars, domain, 16, func(pre Exec) bool {
		// Restrict sb to non-initial events for linearization.
		n := pre.N()
		nonInit := relation.New(n)
		var events []event.Tag
		for i, e := range pre.Events {
			if !e.IsInit() {
				events = append(events, event.Tag(i))
			}
		}
		for _, a := range events {
			for _, b := range events {
				if pre.SB.Has(int(a), int(b)) {
					nonInit.Add(int(a), int(b))
				}
			}
		}
		// Enumerate all linearizations of the full carrier; filter to
		// sequences placing initials first (their relative order is
		// immaterial).
		count := 0
		nonInit.Linearizations(func(perm []int) bool {
			count++
			// Rebuild per-thread sequences from the permutation and
			// check they match the original — Proposition 4.1 says the
			// resulting pre-execution state is the same.
			perThread := map[event.Thread][]event.Action{}
			for _, i := range perm {
				e := pre.Events[i]
				if e.IsInit() {
					return true // initials have no constraints among themselves
				}
				perThread[e.TID] = append(perThread[e.TID], e.Act)
			}
			for th, acts := range perThread {
				var orig []event.Action
				for _, e := range pre.Events {
					if e.TID == th {
						orig = append(orig, e.Act)
					}
				}
				if len(orig) != len(acts) {
					t.Fatalf("thread %d lost events", th)
				}
				for i := range orig {
					if orig[i] != acts[i] {
						t.Fatalf("linearization reordered thread %d", th)
					}
				}
			}
			return true
		})
		if count == 0 {
			t.Fatal("no linearizations")
		}
		checked++
		return checked < 5 // a few pre-executions suffice
	})
	if checked == 0 {
		t.Fatal("no pre-executions")
	}
}

func TestLinearizeRejectsCycles(t *testing.T) {
	events := []event.Event{
		{Tag: 0, Act: event.Rd("x", 1), TID: 1},
		{Tag: 1, Act: event.Wr("x", 1), TID: 2},
	}
	x := NewExec(events)
	x.SB.Add(0, 1) // artificial: sb edge one way
	x.RF.Add(1, 0) // rf the other way — cycle in sb ∪ rf
	if _, ok := x.Linearize(); ok {
		t.Fatal("cyclic sb ∪ rf linearized")
	}
	if _, err := x.ReplayFull(); err == nil {
		t.Fatal("ReplayFull of cyclic execution succeeded")
	}
}

func TestECOClosedFormOnOperationalStates(t *testing.T) {
	// Lemma C.9 on a state with updates, built operationally.
	x := FromState(mpState(t))
	if !x.UpdateAtomic() {
		t.Fatal("operational state not update-atomic")
	}
	if !x.ECO().Equal(x.ECOClosedForm()) {
		t.Fatal("closed form diverges on operational state")
	}
}

func TestWeakCanonicalOnOperationalStates(t *testing.T) {
	x := FromState(mpState(t))
	if !x.WeakCanonicalConsistent() || !x.CoherentDef42() {
		t.Fatal("valid operational state rejected by consistency predicates")
	}
}

func TestRestrictEmptyAndFull(t *testing.T) {
	x := FromState(mpState(t))
	empty := x.Restrict(nil)
	if empty.N() != 0 {
		t.Fatal("empty restriction not empty")
	}
	var all []event.Tag
	for _, e := range x.Events {
		all = append(all, e.Tag)
	}
	full := x.Restrict(all)
	if full.CanonicalSignature() != x.CanonicalSignature() {
		t.Fatal("full restriction changed the execution")
	}
}
