package axiomatic

import (
	"repro/internal/relation"
)

// This file implements Appendix C: the weak canonical RAR consistency
// conditions (Definition C.3) and the equivalence with the eco-based
// Coherence axiom (Theorem C.5). The "canonical" semantics is the RAR
// projection of Batty et al.'s model; "weak" replaces hbC (which
// includes release sequences) with our hb — release sequences are
// outside the fragment.

// WeakCanonicalConsistent reports whether the candidate execution
// satisfies Definition C.3:
//
//	HB:  irrefl(hb)
//	COH: irrefl((rf⁻¹)? ; mo ; rf? ; hb)
//	RF:  irrefl(rf ; hb)
//	RFI: irrefl(rf)
//	UPD: irrefl((mo ; mo ; rf⁻¹) ∪ (mo ; rf))
func (x Exec) WeakCanonicalConsistent() bool {
	hb := x.HB()
	if !hb.Irreflexive() { // HB
		return false
	}
	rfInvOpt := x.RF.Converse().ReflexiveClosure()
	rfOpt := x.RF.ReflexiveClosure()
	coh := relation.Compose(relation.Compose(relation.Compose(rfInvOpt, x.MO), rfOpt), hb)
	if !coh.Irreflexive() { // COH
		return false
	}
	if !relation.Compose(x.RF, hb).Irreflexive() { // RF
		return false
	}
	if !x.RF.Irreflexive() { // RFI
		return false
	}
	upd := relation.UnionOf(
		relation.Compose(relation.Compose(x.MO, x.MO), x.RF.Converse()),
		relation.Compose(x.MO, x.RF),
	)
	return upd.Irreflexive() // UPD
}

// CoherentDef42 reports the Coherence axiom of Definition 4.2 alone:
// irrefl(eco) ∧ irrefl(hb ; eco?). Theorem C.5 states that on
// candidate executions this is equivalent to weak canonical
// consistency; the test suite checks the equivalence on enumerated
// candidates (the Memalloy substitution of Appendix E).
func (x Exec) CoherentDef42() bool {
	eco := x.ECO()
	if !eco.Irreflexive() {
		return false
	}
	return relation.Compose(x.HB(), eco.ReflexiveClosure()).Irreflexive()
}

// UpdateAtomic reports the UPD condition in the reformulation of
// Lemma C.6: irrefl(fr ; mo) ∧ irrefl(rf ; mo).
func (x Exec) UpdateAtomic() bool {
	if !relation.Compose(x.FR(), x.MO).Irreflexive() {
		return false
	}
	return relation.Compose(x.RF, x.MO).Irreflexive()
}
