package axiomatic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// mpState builds a small valid execution operationally:
// t1: wr(d,5); wrR(f,1)   t2: rdA(f,1); rd(d,5).
func mpState(t *testing.T) *core.State {
	t.Helper()
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")
	s, wd, err := s.StepWrite(1, false, "d", 5, id)
	if err != nil {
		t.Fatal(err)
	}
	s, wf, err := s.StepWrite(1, true, "f", 1, iff)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = s.StepRead(2, true, "f", wf.Tag)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = s.StepRead(2, false, "d", wd.Tag)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidStateSatisfiesAllAxioms(t *testing.T) {
	x := FromState(mpState(t))
	if v := x.Check(); v != nil {
		t.Fatalf("valid operational state violates %v", v)
	}
	if !x.Valid() || !x.IsCandidate() {
		t.Fatal("Valid/IsCandidate disagree with Check")
	}
}

func TestSBTotalViolations(t *testing.T) {
	x := FromState(mpState(t))
	// Remove an init edge: init must be sb-before all non-init events.
	y := x.Clone()
	y.SB.Remove(0, 2)
	if v := y.CheckSBTotal(); v == nil {
		t.Fatal("missing init sb edge not detected")
	}
	// Cross-thread edge between non-init threads.
	y2 := x.Clone()
	y2.SB.Add(2, 4) // t1 event to t2 event
	if v := y2.CheckSBTotal(); v == nil {
		t.Fatal("cross-thread sb not detected")
	}
	// Reflexive sb.
	y3 := x.Clone()
	y3.SB.Add(2, 3) // ensure same-thread pair exists both directions
	y3.SB.Add(3, 2)
	if v := y3.CheckSBTotal(); v == nil {
		t.Fatal("sb cycle not detected")
	}
	// Incomparable same-thread events.
	y4 := x.Clone()
	y4.SB.Remove(2, 3)
	if v := y4.CheckSBTotal(); v == nil {
		t.Fatal("incomparable same-thread events not detected")
	}
}

func TestMOValidViolations(t *testing.T) {
	x := FromState(mpState(t))
	// mo on a read.
	y := x.Clone()
	y.MO.Add(4, 5)
	if y.CheckMOValid() == nil {
		t.Fatal("mo on non-write accepted")
	}
	// mo across variables.
	y2 := x.Clone()
	y2.MO.Add(0, 3) // wr(d,0) -> wrR(f,1)
	if y2.CheckMOValid() == nil {
		t.Fatal("mo across variables accepted")
	}
	// Missing init-first edge.
	y3 := x.Clone()
	y3.MO.Remove(0, 2) // init d no longer before wr(d,5)
	if y3.CheckMOValid() == nil {
		t.Fatal("missing init mo edge accepted")
	}
	// Reflexive mo.
	y4 := x.Clone()
	y4.MO.Add(2, 2)
	if y4.CheckMOValid() == nil {
		t.Fatal("reflexive mo accepted")
	}
}

func TestRFCompleteViolations(t *testing.T) {
	x := FromState(mpState(t))
	// Read with no source.
	y := x.Clone()
	y.RF.Remove(3, 4)
	if y.CheckRFComplete() == nil {
		t.Fatal("sourceless read accepted")
	}
	// Two sources for one read: rd(d,5) also "reads" init d? Value
	// mismatch triggers first; craft a same-value double source.
	y2 := x.Clone()
	y2.RF.Add(2, 5) // wr(d,5) -> rd(d,5) duplicate... already there?
	// Pair (2,5) is the genuine edge; add init instead (value differs).
	y2.RF.Add(0, 5)
	if y2.CheckRFComplete() == nil {
		t.Fatal("mismatched rf accepted")
	}
	// rf from a read.
	y3 := x.Clone()
	y3.RF.Add(4, 5)
	if y3.CheckRFComplete() == nil {
		t.Fatal("rf from non-write accepted")
	}
	// rf across variables.
	y4 := x.Clone()
	y4.RF.Remove(3, 4)
	y4.RF.Add(2, 4) // wr(d,5) -> rdA(f,1)
	if y4.CheckRFComplete() == nil {
		t.Fatal("cross-variable rf accepted")
	}
}

func TestNoThinAirViolation(t *testing.T) {
	// Two threads reading each other's future writes: rf against sb
	// forms a cycle. Build by hand.
	events := []event.Event{
		{Tag: 0, Act: event.Wr("x", 0), TID: 0},
		{Tag: 1, Act: event.Wr("y", 0), TID: 0},
		{Tag: 2, Act: event.Rd("x", 1), TID: 1},
		{Tag: 3, Act: event.Wr("y", 1), TID: 1},
		{Tag: 4, Act: event.Rd("y", 1), TID: 2},
		{Tag: 5, Act: event.Wr("x", 1), TID: 2},
	}
	x := NewExec(events)
	for i := 0; i <= 1; i++ {
		for j := 2; j <= 5; j++ {
			x.SB.Add(i, j)
		}
	}
	x.SB.Add(2, 3)
	x.SB.Add(4, 5)
	x.RF.Add(5, 2) // rd(x,1) reads t2's write
	x.RF.Add(3, 4) // rd(y,1) reads t1's write
	x.MO.Add(0, 5)
	x.MO.Add(1, 3)
	if x.CheckNoThinAir() == nil {
		t.Fatal("load-buffering cycle not detected")
	}
	if x.Valid() {
		t.Fatal("LB execution must be invalid in the RAR fragment")
	}
	// Sanity: everything else is fine.
	if x.CheckSBTotal() != nil || x.CheckMOValid() != nil || x.CheckRFComplete() != nil {
		t.Fatal("unexpected violation besides thin-air")
	}
}

func TestCoherenceViolation(t *testing.T) {
	// Read-read coherence: t2 reads x=1 then x=0 while mo orders
	// wr(x,0) before wr(x,1). hb;eco? becomes reflexive.
	events := []event.Event{
		{Tag: 0, Act: event.Wr("x", 0), TID: 0},
		{Tag: 1, Act: event.Wr("x", 1), TID: 1},
		{Tag: 2, Act: event.Rd("x", 1), TID: 2},
		{Tag: 3, Act: event.Rd("x", 0), TID: 2},
	}
	x := NewExec(events)
	x.SB.Add(0, 1)
	x.SB.Add(0, 2)
	x.SB.Add(0, 3)
	x.SB.Add(2, 3)
	x.RF.Add(1, 2)
	x.RF.Add(0, 3)
	x.MO.Add(0, 1)
	if x.CheckSBTotal() != nil || x.CheckMOValid() != nil ||
		x.CheckRFComplete() != nil || x.CheckNoThinAir() != nil {
		t.Fatal("well-formedness should hold")
	}
	if x.CheckCoherence() == nil {
		t.Fatal("CoRR violation not detected")
	}
	if x.Valid() {
		t.Fatal("execution must be invalid")
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{Axiom: Coherence, Detail: "boom"}
	if v.Error() == "" {
		t.Fatal("empty error text")
	}
}

// Theorem 4.4 (soundness), randomized: every state reachable through
// the RA event semantics satisfies all axioms of Definition 4.2.
func TestTheorem44RandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(20190216))
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "z": 0}
	for trial := 0; trial < 60; trial++ {
		s := core.Init(vars)
		steps := 3 + rng.Intn(8)
		for i := 0; i < steps; i++ {
			th := event.Thread(1 + rng.Intn(3))
			x := []event.Var{"x", "y", "z"}[rng.Intn(3)]
			switch rng.Intn(3) {
			case 0: // read
				obs := s.ObservableFor(th, x)
				if len(obs) == 0 {
					continue
				}
				ns, _, err := s.StepRead(th, rng.Intn(2) == 0, x, obs[rng.Intn(len(obs))])
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				s = ns
			case 1: // write
				pts := s.InsertionPointsFor(th, x)
				if len(pts) == 0 {
					continue
				}
				ns, _, err := s.StepWrite(th, rng.Intn(2) == 0, x, event.Val(rng.Intn(4)), pts[rng.Intn(len(pts))])
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				s = ns
			case 2: // update
				pts := s.InsertionPointsFor(th, x)
				if len(pts) == 0 {
					continue
				}
				ns, _, err := s.StepRMW(th, x, event.Val(rng.Intn(4)), pts[rng.Intn(len(pts))])
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				s = ns
			}
			if v := FromState(s).Check(); v != nil {
				t.Fatalf("trial %d after %d steps: %v\n%s", trial, i+1, v, s)
			}
		}
	}
}
