package axiomatic

import (
	"sort"

	"repro/internal/event"
	"repro/internal/relation"
)

// This file implements Definition 4.3: a pre-execution state (D, sb)
// is justifiable iff there exist rf and mo making ((D,sb),rf,mo)
// valid. The search is the "post-hoc" two-step procedure the paper
// describes in its introduction — generate candidate rf/mo and filter
// by the axioms — and doubles as the baseline the operational
// semantics is compared against (generate-and-test vs. on-the-fly
// validation).
//
// Two sound prunings keep the product space manageable:
//
//   - reads-from is assigned first, and any assignment making sb ∪ rf
//     cyclic is cut immediately (No-Thin-Air is monotone in rf);
//   - modification order is built one variable at a time, and a branch
//     is cut as soon as eco acquires a cycle — fr and eco only grow
//     as mo grows, so a cycle in a partial mo persists in every
//     completion.

// Justifications enumerates every (rf, mo) pair making the
// pre-execution valid, invoking yield with the completed execution.
// Enumeration stops early when yield returns false. The input's RF
// and MO are ignored.
func (x Exec) Justifications(yield func(Exec) bool) {
	reads := x.Reads()

	// Candidate rf sources per read: same-variable writes with
	// matching value.
	sources := make([][]event.Tag, len(reads))
	for i, r := range reads {
		re := x.Events[int(r)]
		for j, w := range x.Events {
			if w.IsWrite() && w.Var() == re.Var() && w.WrVal() == re.RdVal() && event.Tag(j) != r {
				sources[i] = append(sources[i], event.Tag(j))
			}
		}
		if len(sources[i]) == 0 {
			return // some read can never be justified
		}
	}

	// Writes per variable, initialising writes first.
	perVar := map[event.Var][]event.Tag{}
	var vars []event.Var
	for j, w := range x.Events {
		if !w.IsWrite() {
			continue
		}
		if _, seen := perVar[w.Var()]; !seen {
			vars = append(vars, w.Var())
		}
		perVar[w.Var()] = append(perVar[w.Var()], event.Tag(j))
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	cand := x.Clone()
	stopped := false

	var moVar func(vi int)
	moVar = func(vi int) {
		if stopped {
			return
		}
		// Prune: eco only grows with mo, so a cycle now is a cycle in
		// every completion.
		if !cand.ECO().Irreflexive() {
			return
		}
		if vi == len(vars) {
			if cand.Valid() {
				if !yield(cand.Clone()) {
					stopped = true
				}
			}
			return
		}
		ws := perVar[vars[vi]]
		var inits, rest []event.Tag
		for _, w := range ws {
			if x.Events[int(w)].IsInit() {
				inits = append(inits, w)
			} else {
				rest = append(rest, w)
			}
		}
		permute(rest, func(order []event.Tag) bool {
			full := append(append([]event.Tag{}, inits...), order...)
			for i := 0; i < len(full); i++ {
				for j := i + 1; j < len(full); j++ {
					cand.MO.Add(int(full[i]), int(full[j]))
				}
			}
			moVar(vi + 1)
			for i := 0; i < len(full); i++ {
				for j := i + 1; j < len(full); j++ {
					cand.MO.Remove(int(full[i]), int(full[j]))
				}
			}
			return !stopped
		})
	}

	var rfRead func(ri int)
	rfRead = func(ri int) {
		if stopped {
			return
		}
		if ri == len(reads) {
			moVar(0)
			return
		}
		r := reads[ri]
		for _, w := range sources[ri] {
			cand.RF.Add(int(w), int(r))
			// Prune: No-Thin-Air is monotone in rf.
			if relation.UnionOf(cand.SB, cand.RF).Acyclic() {
				rfRead(ri + 1)
			}
			cand.RF.Remove(int(w), int(r))
			if stopped {
				return
			}
		}
	}

	rfRead(0)
}

// Justify returns one justification of the pre-execution, or ok=false
// when none exists.
func (x Exec) Justify() (Exec, bool) {
	var out Exec
	found := false
	x.Justifications(func(e Exec) bool {
		out, found = e, true
		return false
	})
	return out, found
}

// Justifiable reports Definition 4.3: some valid completion exists.
func (x Exec) Justifiable() bool {
	_, ok := x.Justify()
	return ok
}

// permute enumerates permutations of xs, calling f with each; f
// returning false stops enumeration. Returns false when stopped.
func permute(xs []event.Tag, f func([]event.Tag) bool) bool {
	n := len(xs)
	if n == 0 {
		return f(nil)
	}
	perm := append([]event.Tag(nil), xs...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return f(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	return rec(0)
}
