package axiomatic

import (
	"testing"

	"repro/internal/event"
	"repro/internal/lang"
)

// Litmus programs used by the equivalence tests.

func progMP() (lang.Prog, map[event.Var]event.Val) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("d", lang.V(5)), lang.AssignRelC("f", lang.V(1))),
		lang.SeqC(lang.AssignC("a", lang.XA("f")), lang.AssignC("b", lang.X("d"))),
	}
	return p, map[event.Var]event.Val{"d": 0, "f": 0, "a": 0, "b": 0}
}

func progSB() (lang.Prog, map[event.Var]event.Val) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignC("a", lang.X("y"))),
		lang.SeqC(lang.AssignC("y", lang.V(1)), lang.AssignC("b", lang.X("x"))),
	}
	return p, map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
}

func progLB() (lang.Prog, map[event.Var]event.Val) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("a", lang.X("x")), lang.AssignC("y", lang.V(1))),
		lang.SeqC(lang.AssignC("b", lang.X("y")), lang.AssignC("x", lang.V(1))),
	}
	return p, map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
}

func prog2W() (lang.Prog, map[event.Var]event.Val) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignC("y", lang.V(2))),
		lang.SeqC(lang.AssignC("y", lang.V(1)), lang.AssignC("x", lang.V(2))),
	}
	return p, map[event.Var]event.Val{"x": 0, "y": 0}
}

func progRMW() (lang.Prog, map[event.Var]event.Val) {
	p := lang.Prog{
		lang.SwapC("t", 1),
		lang.SwapC("t", 2),
	}
	return p, map[event.Var]event.Val{"t": 0}
}

func TestValueDomain(t *testing.T) {
	p, vars := progMP()
	dom := ValueDomain(p, vars)
	want := []event.Val{0, 1, 5}
	if len(dom) != len(want) {
		t.Fatalf("domain = %v", dom)
	}
	for i, v := range want {
		if dom[i] != v {
			t.Fatalf("domain = %v, want %v", dom, want)
		}
	}
	// Swap values and control-flow literals are collected.
	p2 := lang.Prog{lang.SeqC(
		lang.SwapC("t", 7),
		lang.IfC(lang.Eq(lang.X("t"), lang.V(9)), lang.SkipC(), lang.SkipC()),
		lang.WhileC(lang.Ne(lang.X("t"), lang.V(11)), lang.LabelC("l", lang.SkipC())),
	)}
	dom2 := ValueDomain(p2, map[event.Var]event.Val{"t": 0})
	has := map[event.Val]bool{}
	for _, v := range dom2 {
		has[v] = true
	}
	for _, v := range []event.Val{0, 7, 9, 11} {
		if !has[v] {
			t.Fatalf("domain2 = %v missing %d", dom2, v)
		}
	}
}

func TestPreExecutionsShape(t *testing.T) {
	p, vars := progMP()
	domain := ValueDomain(p, vars)
	n := 0
	PreExecutions(p, vars, domain, 32, func(x Exec) bool {
		n++
		// Pre-executions are well-formed pre-states: SB-Total holds.
		if v := x.CheckSBTotal(); v != nil {
			t.Fatalf("pre-execution violates %v", v)
		}
		// 4 initials + 2 writes + 2 reads + 2 register writes.
		if x.N() != 10 {
			t.Fatalf("pre-execution has %d events", x.N())
		}
		return true
	})
	// Reads of f and d each range over domain {0,1,5}: 9 value
	// combinations, one pre-execution each (interleaving-deduped).
	if n != 9 {
		t.Fatalf("pre-execution count = %d, want 9", n)
	}
}

func TestPreExecutionsTruncation(t *testing.T) {
	// An infinite loop must trip the event bound, not hang.
	p := lang.Prog{lang.WhileC(lang.Eq(lang.X("x"), lang.V(0)), lang.SkipC())}
	vars := map[event.Var]event.Val{"x": 0}
	truncated := PreExecutions(p, vars, ValueDomain(p, vars), 6, func(x Exec) bool { return true })
	if !truncated {
		t.Fatal("unbounded loop did not report truncation")
	}
}

func TestExample45JustifyAndReplay(t *testing.T) {
	// thread 1: z := x, thread 2: x := 5. The pre-execution in which
	// the read returns 5 "before" the write exists is justifiable, and
	// the justification replays operationally along sb ∪ rf.
	p := lang.Prog{
		lang.AssignC("z", lang.X("x")),
		lang.AssignC("x", lang.V(5)),
	}
	vars := map[event.Var]event.Val{"x": 0, "z": 0}
	domain := ValueDomain(p, vars)

	var justified []Exec
	PreExecutions(p, vars, domain, 16, func(pre Exec) bool {
		pre.Justifications(func(j Exec) bool {
			justified = append(justified, j)
			return true
		})
		return true
	})
	if len(justified) == 0 {
		t.Fatal("no justification found")
	}
	sawThinAirRead := false
	for _, j := range justified {
		// Every justification is valid and replays to an identical
		// canonical state (Theorem 4.8).
		if !j.Valid() {
			t.Fatal("justification invalid")
		}
		st, err := j.ReplayFull()
		if err != nil {
			t.Fatalf("replay failed: %v\n%s", err, j)
		}
		got := FromState(st).CanonicalSignature()
		if got != j.CanonicalSignature() {
			t.Fatalf("replay signature mismatch:\n got %s\nwant %s", got, j.CanonicalSignature())
		}
		for _, e := range j.Events {
			if e.IsRead() && e.RdVal() == 5 {
				sawThinAirRead = true
			}
		}
	}
	if !sawThinAirRead {
		t.Fatal("the rd(x,5) pre-execution of Example 4.5 was not justified")
	}
}

func TestJustifyRejectsImpossibleRead(t *testing.T) {
	// A read of a value never written is unjustifiable.
	events := []event.Event{
		{Tag: 0, Act: event.Wr("x", 0), TID: 0},
		{Tag: 1, Act: event.Rd("x", 42), TID: 1},
	}
	x := NewExec(events)
	x.SB.Add(0, 1)
	if x.Justifiable() {
		t.Fatal("read of unwritten value justified")
	}
}

// The central equivalence: operational outcome set == axiomatic
// outcome set, per litmus program (soundness ∩ completeness at
// program scale, Theorems 4.4 + 4.8).
func TestOperationalEqualsAxiomatic(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (lang.Prog, map[event.Var]event.Val)
	}{
		{"MP", progMP},
		{"SB", progSB},
		{"LB", progLB},
		{"2W", prog2W},
		{"RMW", progRMW},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, vars := c.mk()
			ax := ValidExecutions(p, vars, 40)
			op := OperationalExecutions(p, vars)
			if len(ax) == 0 || len(op) == 0 {
				t.Fatalf("degenerate sets: |ax|=%d |op|=%d", len(ax), len(op))
			}
			for sig := range op {
				if _, ok := ax[sig]; !ok {
					t.Errorf("operational execution not axiomatically valid (soundness breach):\n%s", sig)
				}
			}
			for sig := range ax {
				if _, ok := op[sig]; !ok {
					t.Errorf("valid execution not operationally reachable (completeness breach):\n%s", sig)
				}
			}
		})
	}
}

// Theorem 4.8 exhaustively at litmus scale: every valid execution
// replays through the RA semantics to the same state.
func TestTheorem48ReplayAll(t *testing.T) {
	for _, mk := range []func() (lang.Prog, map[event.Var]event.Val){progMP, progSB, progRMW} {
		p, vars := mk()
		for sig, x := range ValidExecutions(p, vars, 40) {
			st, err := x.ReplayFull()
			if err != nil {
				t.Fatalf("replay of %s failed: %v", sig, err)
			}
			if got := FromState(st).CanonicalSignature(); got != sig {
				t.Fatalf("replay mismatch:\n got %s\nwant %s", got, sig)
			}
		}
	}
}

func TestReplayErrors(t *testing.T) {
	// Replaying an order that violates rf dependency fails cleanly.
	p := lang.Prog{
		lang.AssignC("z", lang.X("x")),
		lang.AssignC("x", lang.V(5)),
	}
	vars := map[event.Var]event.Val{"x": 0, "z": 0}
	for _, x := range ValidExecutions(p, vars, 16) {
		// Find an execution where the read reads 5 (so it depends on
		// thread 2's write), then replay read-first.
		var readTag, writeTag event.Tag
		var haveRead bool
		for _, e := range x.Events {
			if e.IsRead() && e.RdVal() == 5 {
				readTag = e.Tag
				haveRead = true
			}
			if e.IsWrite() && e.Var() == "x" && !e.IsInit() {
				writeTag = e.Tag
			}
		}
		if !haveRead {
			continue
		}
		var rest []event.Tag
		for _, e := range x.Events {
			if !e.IsInit() && e.Tag != readTag && e.Tag != writeTag {
				rest = append(rest, e.Tag)
			}
		}
		order := append([]event.Tag{readTag, writeTag}, rest...)
		if _, err := x.Replay(order); err == nil {
			t.Fatal("rf-violating replay order succeeded")
		}
		return
	}
	t.Fatal("no suitable execution found")
}

func TestRestrict(t *testing.T) {
	x := FromState(mpState(t))
	keep := []event.Tag{0, 1, 2, 3} // initials + thread 1's writes
	r := x.Restrict(keep)
	if r.N() != 4 {
		t.Fatalf("restricted size = %d", r.N())
	}
	if v := r.Check(); v != nil {
		t.Fatalf("restriction of valid prefix invalid: %v", v)
	}
	// Restriction dropped rf edges into removed reads.
	if r.RF.Count() != 0 {
		t.Fatal("rf to removed reads survived")
	}
}

func TestCanonicalSignatureInterleavingInvariance(t *testing.T) {
	// Two interleavings of 2W with the same final mo must share a
	// signature. Build both by hand through the operational semantics.
	p, vars := prog2W()
	op := OperationalExecutions(p, vars)
	ax := ValidExecutions(p, vars, 32)
	if len(op) != len(ax) {
		t.Fatalf("|op| = %d, |ax| = %d", len(op), len(ax))
	}
}

func BenchmarkOperationalEnumeration(b *testing.B) {
	p, vars := progMP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(OperationalExecutions(p, vars)) == 0 {
			b.Fatal("no executions")
		}
	}
}

func BenchmarkAxiomaticEnumeration(b *testing.B) {
	p, vars := progMP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(ValidExecutions(p, vars, 40)) == 0 {
			b.Fatal("no executions")
		}
	}
}
