package axiomatic

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/relation"
)

// This file implements Definition 4.2: a C11 execution ((D,sb),rf,mo)
// is valid iff SBTotal, MOValid, RFComplete, NoThinAir and Coherence
// all hold, plus the canonical (Appendix C) consistency conditions.

// Axiom identifies one of the validity axioms.
type Axiom string

// The five axioms of Definition 4.2.
const (
	SBTotal    Axiom = "SB-Total"
	MOValid    Axiom = "MO-Valid"
	RFComplete Axiom = "RF-Complete"
	NoThinAir  Axiom = "No-Thin-Air"
	Coherence  Axiom = "Coherence"
)

// Violation describes a failed axiom.
type Violation struct {
	Axiom  Axiom
	Detail string
}

func (v Violation) Error() string {
	return fmt.Sprintf("axiom %s violated: %s", v.Axiom, v.Detail)
}

// CheckSBTotal verifies the SB-Total axiom: sequenced-before is a
// strict total order over the events of each non-initialising thread
// and orders all initialising writes before all other events.
func (x Exec) CheckSBTotal() *Violation {
	n := x.N()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			ea, eb := x.Events[a], x.Events[b]
			if x.SB.Has(a, b) {
				if ea.TID != event.InitThread && ea.TID != eb.TID {
					return &Violation{SBTotal, fmt.Sprintf("cross-thread sb (%s,%s)", ea, eb)}
				}
			}
			if ea.TID == event.InitThread && eb.TID != event.InitThread && !x.SB.Has(a, b) {
				return &Violation{SBTotal, fmt.Sprintf("init %s not sb-before %s", ea, eb)}
			}
			if ea.TID != event.InitThread && ea.TID == eb.TID && a != b &&
				!x.SB.Has(a, b) && !x.SB.Has(b, a) {
				return &Violation{SBTotal, fmt.Sprintf("incomparable same-thread events %s, %s", ea, eb)}
			}
		}
	}
	// Strictness: sb restricted to each thread must be a strict order.
	if !x.SB.Irreflexive() {
		return &Violation{SBTotal, "sb reflexive"}
	}
	if !x.SB.Acyclic() {
		return &Violation{SBTotal, "sb cyclic"}
	}
	return nil
}

// CheckMOValid verifies the MO-Valid axiom: mo is a disjoint union of
// strict total orders per variable over the writes, with initialising
// writes mo-first.
func (x Exec) CheckMOValid() *Violation {
	n := x.N()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			ea, eb := x.Events[a], x.Events[b]
			if x.MO.Has(a, b) {
				if !ea.IsWrite() || !eb.IsWrite() {
					return &Violation{MOValid, fmt.Sprintf("mo on non-write (%s,%s)", ea, eb)}
				}
				if ea.Var() != eb.Var() {
					return &Violation{MOValid, fmt.Sprintf("mo across variables (%s,%s)", ea, eb)}
				}
			}
			if !ea.IsWrite() || !eb.IsWrite() || ea.Var() != eb.Var() {
				continue
			}
			if ea.TID == event.InitThread && eb.TID != event.InitThread && !x.MO.Has(a, b) {
				return &Violation{MOValid, fmt.Sprintf("init %s not mo-before %s", ea, eb)}
			}
			if ea.TID != event.InitThread && eb.TID != event.InitThread && a != b &&
				!x.MO.Has(a, b) && !x.MO.Has(b, a) {
				return &Violation{MOValid, fmt.Sprintf("incomparable writes %s, %s", ea, eb)}
			}
		}
	}
	if !x.MO.Irreflexive() {
		return &Violation{MOValid, "mo reflexive"}
	}
	if !x.MO.Transitive() {
		return &Violation{MOValid, "mo not transitive"}
	}
	return nil
}

// CheckRFComplete verifies the RF-Complete axiom: every read reads
// from exactly one write of the same variable and value.
func (x Exec) CheckRFComplete() *Violation {
	n := x.N()
	incoming := make([]int, n)
	for a := 0; a < n; a++ {
		row := x.RF.Row(a)
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			ea, eb := x.Events[a], x.Events[b]
			if !ea.IsWrite() {
				return &Violation{RFComplete, fmt.Sprintf("rf from non-write %s", ea)}
			}
			if !eb.IsRead() {
				return &Violation{RFComplete, fmt.Sprintf("rf to non-read %s", eb)}
			}
			if ea.Var() != eb.Var() {
				return &Violation{RFComplete, fmt.Sprintf("rf across variables (%s,%s)", ea, eb)}
			}
			if ea.WrVal() != eb.RdVal() {
				return &Violation{RFComplete, fmt.Sprintf("rf value mismatch (%s,%s)", ea, eb)}
			}
			incoming[b]++
		}
	}
	for i, e := range x.Events {
		if e.IsRead() && incoming[i] != 1 {
			return &Violation{RFComplete, fmt.Sprintf("read %s has %d rf sources", e, incoming[i])}
		}
	}
	return nil
}

// CheckNoThinAir verifies the No-Thin-Air axiom: sb ∪ rf is acyclic.
func (x Exec) CheckNoThinAir() *Violation {
	if !relation.UnionOf(x.SB, x.RF).Acyclic() {
		return &Violation{NoThinAir, "sb ∪ rf cyclic"}
	}
	return nil
}

// CheckCoherence verifies the Coherence axiom: hb;eco? and eco are
// irreflexive.
func (x Exec) CheckCoherence() *Violation {
	eco := x.ECO()
	if !eco.Irreflexive() {
		return &Violation{Coherence, "eco reflexive"}
	}
	hbEcoOpt := relation.Compose(x.HB(), eco.ReflexiveClosure())
	if !hbEcoOpt.Irreflexive() {
		return &Violation{Coherence, "hb;eco? reflexive"}
	}
	return nil
}

// Check returns the first violated axiom of Definition 4.2, or nil
// when the execution is valid.
func (x Exec) Check() *Violation {
	for _, f := range []func() *Violation{
		x.CheckSBTotal, x.CheckMOValid, x.CheckRFComplete,
		x.CheckNoThinAir, x.CheckCoherence,
	} {
		if v := f(); v != nil {
			return v
		}
	}
	return nil
}

// Valid reports whether the execution satisfies Definition 4.2.
func (x Exec) Valid() bool { return x.Check() == nil }

// IsCandidate reports whether the execution is a candidate execution
// in the sense of Definition C.1: it satisfies RF-Complete, MO-Valid
// and SB-Total (the well-formedness conditions), irrespective of
// coherence.
func (x Exec) IsCandidate() bool {
	return x.CheckSBTotal() == nil && x.CheckMOValid() == nil && x.CheckRFComplete() == nil
}
