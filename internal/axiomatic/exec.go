// Package axiomatic implements the axiomatic side of the paper: the
// RAR fragment of RC11 (§4.1, Definition 4.2), the canonical C11
// consistency conditions of Appendix C, pre-executions and their
// justification (Definition 4.3), and the completeness replay of
// Theorem 4.8 that drives every execution back through the operational
// semantics of internal/core.
package axiomatic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/relation"
)

// Exec is a candidate execution ((D, sb), rf, mo): an event set with
// the three basic relations, not necessarily valid. Unlike core.State
// (which can only be grown through the Figure 3 rules), an Exec can
// hold arbitrary relation contents, which is exactly what the
// axiomatic semantics quantifies over.
type Exec struct {
	Events []event.Event // D; index is the tag
	SB     relation.Rel
	RF     relation.Rel
	MO     relation.Rel
}

// NewExec returns an execution over the given events with empty
// relations.
func NewExec(events []event.Event) Exec {
	n := len(events)
	return Exec{
		Events: events,
		SB:     relation.New(n),
		RF:     relation.New(n),
		MO:     relation.New(n),
	}
}

// FromState converts an operationally constructed state into a
// candidate execution (they have identical components).
func FromState(s *core.State) Exec {
	return Exec{Events: s.Events(), SB: s.SB(), RF: s.RF(), MO: s.MO()}
}

// Clone returns an independent copy of x.
func (x Exec) Clone() Exec {
	ev := make([]event.Event, len(x.Events))
	copy(ev, x.Events)
	return Exec{Events: ev, SB: x.SB.Clone(), RF: x.RF.Clone(), MO: x.MO.Clone()}
}

// N returns |D|.
func (x Exec) N() int { return len(x.Events) }

// SW returns sw = rf ∩ (WrR × RdA).
func (x Exec) SW() relation.Rel {
	return x.RF.FilterPairs(func(a, b int) bool {
		return x.Events[a].Releasing() && x.Events[b].Acquiring()
	})
}

// HB returns hb = (sb ∪ sw)⁺.
func (x Exec) HB() relation.Rel {
	return relation.UnionOf(x.SB, x.SW()).TransitiveClosure()
}

// FR returns fr = (rf⁻¹ ; mo) \ Id.
func (x Exec) FR() relation.Rel {
	return relation.Compose(x.RF.Converse(), x.MO).WithoutIdentity()
}

// ECO returns eco = (fr ∪ mo ∪ rf)⁺.
func (x Exec) ECO() relation.Rel {
	return relation.UnionOf(x.FR(), x.MO, x.RF).TransitiveClosure()
}

// ECOClosedForm returns rf ∪ mo ∪ fr ∪ (mo;rf) ∪ (fr;rf) — the
// closed form of eco proved in Lemma C.9 for executions satisfying
// update atomicity.
func (x Exec) ECOClosedForm() relation.Rel {
	fr := x.FR()
	return relation.UnionOf(
		x.RF, x.MO, fr,
		relation.Compose(x.MO, x.RF),
		relation.Compose(fr, x.RF),
	)
}

// Reads returns the tags of read events (including updates).
func (x Exec) Reads() []event.Tag {
	var out []event.Tag
	for i, e := range x.Events {
		if e.IsRead() {
			out = append(out, event.Tag(i))
		}
	}
	return out
}

// WriteSet returns the set of write events as a bitset.
func (x Exec) WriteSet() bits.Set {
	w := bits.New(len(x.Events))
	for i, e := range x.Events {
		if e.IsWrite() {
			w.Set(i)
		}
	}
	return w
}

// Restrict returns the execution restricted to the event set E
// (Theorem 4.8's ↓E operator), re-tagging events densely in ascending
// tag order.
func (x Exec) Restrict(keep []event.Tag) Exec {
	sorted := append([]event.Tag(nil), keep...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := map[event.Tag]int{}
	events := make([]event.Event, 0, len(sorted))
	for newTag, g := range sorted {
		idx[g] = newTag
		e := x.Events[int(g)]
		e.Tag = event.Tag(newTag)
		events = append(events, e)
	}
	out := NewExec(events)
	cp := func(src relation.Rel, dst *relation.Rel) {
		for _, p := range src.Pairs() {
			i, iok := idx[event.Tag(p[0])]
			j, jok := idx[event.Tag(p[1])]
			if iok && jok {
				dst.Add(i, j)
			}
		}
	}
	cp(x.SB, &out.SB)
	cp(x.RF, &out.RF)
	cp(x.MO, &out.MO)
	return out
}

// CanonicalSignature returns an interleaving-independent identity for
// the execution: events are renamed by (thread, position-in-thread)
// with initialising writes ordered by variable, and the rf and mo
// relations are printed over those canonical names. Two executions
// reachable by different interleavings of the same per-thread event
// sequences with the same rf and mo share a signature.
func (x Exec) CanonicalSignature() string {
	type keyed struct {
		tid  event.Thread
		pos  int
		name string // tiebreak for init writes
		tag  event.Tag
	}
	ks := make([]keyed, len(x.Events))
	perThread := map[event.Thread]int{}
	// Events of one thread appear in sb order, which for both
	// core.State and the enumerators below coincides with tag order.
	for i, e := range x.Events {
		ks[i] = keyed{tid: e.TID, pos: perThread[e.TID], name: string(e.Var()), tag: e.Tag}
		perThread[e.TID]++
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].tid != ks[j].tid {
			return ks[i].tid < ks[j].tid
		}
		if ks[i].tid == event.InitThread && ks[i].name != ks[j].name {
			return ks[i].name < ks[j].name
		}
		return ks[i].pos < ks[j].pos
	})
	canon := make(map[event.Tag]int, len(ks))
	var b strings.Builder
	for i, k := range ks {
		canon[k.tag] = i
		fmt.Fprintf(&b, "%d:%s|", k.tid, x.Events[int(k.tag)].Act)
	}
	writePairs := func(label string, r relation.Rel) {
		pairs := r.Pairs()
		renamed := make([][2]int, 0, len(pairs))
		for _, p := range pairs {
			renamed = append(renamed, [2]int{canon[event.Tag(p[0])], canon[event.Tag(p[1])]})
		}
		sort.Slice(renamed, func(i, j int) bool {
			if renamed[i][0] != renamed[j][0] {
				return renamed[i][0] < renamed[j][0]
			}
			return renamed[i][1] < renamed[j][1]
		})
		b.WriteString(label)
		for _, p := range renamed {
			fmt.Fprintf(&b, "(%d,%d)", p[0], p[1])
		}
	}
	writePairs("rf", x.RF)
	writePairs("mo", x.MO)
	return b.String()
}

// Fingerprint returns the 128-bit binary equivalent of
// CanonicalSignature: the same (thread, position-in-thread) renaming
// and the same identified executions, hashed instead of printed. It
// uses the encoding shared with core.State.Fingerprint, so an
// operationally built state and its FromState image fingerprint
// identically.
func (x Exec) Fingerprint() fingerprint.FP {
	return fingerprint.Canonical(x.Events, x.RF, x.MO)
}

// String renders a readable multi-line description.
func (x Exec) String() string {
	var b strings.Builder
	for _, e := range x.Events {
		fmt.Fprintf(&b, "%s\n", e)
	}
	fmt.Fprintf(&b, "sb=%s rf=%s mo=%s", x.SB, x.RF, x.MO)
	return b.String()
}
