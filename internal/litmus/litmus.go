// Package litmus provides the classic weak-memory litmus tests
// expressed in the paper's command language, with their expected
// verdicts per memory model — the RAR fragment of internal/core and
// the SC backend of internal/sc — plus the Peterson mutual-exclusion
// programs of Algorithm 1 (and deliberately weakened variants used as
// negative controls). Each test runs through the model-generic
// explorer under a chosen backend; Diff runs two backends on the same
// test and reports the outcome-set difference (the weak behaviours).
// At litmus sizes the RAR verdicts are additionally cross-checked
// against the axiomatic generate-and-test baseline.
package litmus

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/model"
)

// Outcome is an assignment of final values to observed variables. The
// final value of a variable is the value of its mo-last write.
type Outcome map[event.Var]event.Val

// Key renders the outcome over the observed variables, in the same
// format Report.Outcomes uses.
func (o Outcome) Key(observe []event.Var) string { return o.key(observe) }

func (o Outcome) key(observe []event.Var) string {
	var b strings.Builder
	for _, x := range observe {
		fmt.Fprintf(&b, "%s=%d;", x, o[x])
	}
	return b.String()
}

// Test is one litmus test.
type Test struct {
	// Name identifies the test (e.g. "MP+rel+acq").
	Name string
	// Prog and Init define the program and initial memory.
	Prog lang.Prog
	Init map[event.Var]event.Val
	// Observe lists the variables whose final values form an outcome.
	Observe []event.Var
	// Allowed outcomes must be reachable; Forbidden must not. These
	// are the expectations under the RAR model (the paper's
	// semantics, the default backend).
	Allowed   []Outcome
	Forbidden []Outcome
	// SCAllowed and SCForbidden are the expectations under the SC
	// backend where they differ from (or sharpen) the RAR ones. SC
	// refines RAR, so under SC every Forbidden outcome stays
	// forbidden and SCForbidden adds the weak outcomes SC rules out;
	// SCAllowed lists outcomes that must still be reachable. Tests
	// with nil SC fields are checked for refinement only.
	SCAllowed   []Outcome
	SCForbidden []Outcome
	// MaxEvents bounds exploration (0: default; ignored by backends
	// whose configurations make no progress, like SC).
	MaxEvents int
}

// Expectations returns the allowed and forbidden outcome sets for the
// named model ("rar", "sc"): the catalog's per-model verdicts.
func (t *Test) Expectations(modelName string) (allowed, forbidden []Outcome) {
	if modelName == "sc" {
		allowed = t.SCAllowed
		forbidden = append(append([]Outcome(nil), t.Forbidden...), t.SCForbidden...)
		return allowed, forbidden
	}
	return t.Allowed, t.Forbidden
}

// Report is the verdict of running a test.
type Report struct {
	Test *Test
	// Model names the backend the test ran under.
	Model    string
	Outcomes map[string]bool // reachable outcome keys
	// MissingAllowed and ReachedForbidden list violated expectations.
	MissingAllowed   []string
	ReachedForbidden []string
	Explored         int
	Truncated        bool
	// FingerprintCollisions reports the explorer's fingerprint audit;
	// only populated when the run sets Options.CheckCollisions.
	FingerprintCollisions int
}

// Pass reports whether every expectation held.
func (r Report) Pass() bool {
	return len(r.MissingAllowed) == 0 && len(r.ReachedForbidden) == 0
}

// Summary renders a one-line verdict.
func (r Report) Summary() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("%-24s %-4s %s  outcomes=%d explored=%d %s",
		r.Test.Name, r.Model, verdict, len(r.Outcomes), r.Explored, strings.Join(keys, " "))
}

// Run explores the test under the RAR backend and checks the RAR
// expectations. Shorthand for RunModel(core.Model, opts).
func (t *Test) Run(opts explore.Options) Report {
	return t.RunModel(core.Model, opts)
}

// RunModel explores the test under the given memory model and checks
// the model's expectations from the catalog.
func (t *Test) RunModel(m model.Model, opts explore.Options) Report {
	if opts.MaxEvents == 0 {
		opts.MaxEvents = t.MaxEvents
	}
	rep := Report{Test: t, Model: m.Name()}

	cfg := m.New(t.Prog, t.Init)
	res, outcomes := runOutcomes(cfg, t.Observe, opts)
	rep.Outcomes = outcomes
	rep.Explored = res.Explored
	// A budget stop leaves the outcome set partial exactly like a bound
	// cut does; expectations are then relative to what was explored.
	rep.Truncated = res.Truncated || res.Stop != explore.StopNone
	rep.FingerprintCollisions = res.FingerprintCollisions

	rep.MissingAllowed, rep.ReachedForbidden = t.CheckOutcomes(m.Name(), rep.Outcomes)
	return rep
}

// CheckOutcomes evaluates the named model's catalog expectations
// against an already-computed outcome set (keys in the Summarise
// format), returning the violated ones. Lets differential callers
// check verdicts from a Diff's outcome sets without re-exploring.
func (t *Test) CheckOutcomes(modelName string, outcomes map[string]bool) (missingAllowed, reachedForbidden []string) {
	allowed, forbidden := t.Expectations(modelName)
	for _, o := range allowed {
		if !outcomes[o.key(t.Observe)] {
			missingAllowed = append(missingAllowed, o.key(t.Observe))
		}
	}
	for _, o := range forbidden {
		if outcomes[o.key(t.Observe)] {
			reachedForbidden = append(reachedForbidden, o.key(t.Observe))
		}
	}
	return missingAllowed, reachedForbidden
}

// runOutcomes explores cfg and gathers the terminated outcome set
// over the observed variables, through the model's shared Summarise
// format so keys are comparable across backends.
func runOutcomes(cfg model.Config, observe []event.Var, opts explore.Options) (explore.Result, map[string]bool) {
	outcomes := map[string]bool{}
	var mu sync.Mutex
	o := opts
	// The property runs concurrently under a parallel explorer; the
	// outcome set is the only shared state and is mutex-guarded.
	o.Property = func(c model.Config) bool {
		if c.Terminated() {
			key := c.Summarise(observe)
			mu.Lock()
			outcomes[key] = true
			mu.Unlock()
		}
		return true
	}
	res := explore.Run(cfg, o)
	return res, outcomes
}

// seqAsn builds var := e chains tersely.
func wr(x event.Var, v event.Val) lang.Com  { return lang.AssignC(x, lang.V(v)) }
func wrR(x event.Var, v event.Val) lang.Com { return lang.AssignRelC(x, lang.V(v)) }
func rd(dst, src event.Var) lang.Com        { return lang.AssignC(dst, lang.X(src)) }
func rdA(dst, src event.Var) lang.Com       { return lang.AssignC(dst, lang.XA(src)) }

// Suite returns the full litmus catalog.
func Suite() []*Test {
	zero := func(xs ...event.Var) map[event.Var]event.Val {
		m := map[event.Var]event.Val{}
		for _, x := range xs {
			m[x] = 0
		}
		return m
	}
	return []*Test{
		{
			Name: "MP+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wr("d", 5), wrR("f", 1)),
				lang.SeqC(rdA("a", "f"), rd("b", "d")),
			},
			Init:    zero("d", "f", "a", "b"),
			Observe: []event.Var{"a", "b"},
			Allowed: []Outcome{
				{"a": 0, "b": 0}, {"a": 0, "b": 5}, {"a": 1, "b": 5},
			},
			Forbidden: []Outcome{{"a": 1, "b": 0}},
			// Release/acquire already restores message passing, so the
			// models agree on this test.
			SCAllowed: []Outcome{
				{"a": 0, "b": 0}, {"a": 0, "b": 5}, {"a": 1, "b": 5},
			},
		},
		{
			Name: "MP+rlx+rlx",
			Prog: lang.Prog{
				lang.SeqC(wr("d", 5), wr("f", 1)),
				lang.SeqC(rd("a", "f"), rd("b", "d")),
			},
			Init:    zero("d", "f", "a", "b"),
			Observe: []event.Var{"a", "b"},
			Allowed: []Outcome{
				{"a": 1, "b": 0}, // the stale read is allowed relaxed
				{"a": 1, "b": 5},
			},
			// SC restores message passing even without annotations:
			// the stale read is the RA/SC divergence on this test.
			SCAllowed:   []Outcome{{"a": 1, "b": 5}, {"a": 0, "b": 0}},
			SCForbidden: []Outcome{{"a": 1, "b": 0}},
		},
		{
			Name: "SB+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wrR("x", 1), rdA("a", "y")),
				lang.SeqC(wrR("y", 1), rdA("b", "x")),
			},
			Init:    zero("x", "y", "a", "b"),
			Observe: []event.Var{"a", "b"},
			Allowed: []Outcome{
				{"a": 0, "b": 0}, // RA is weaker than SC
				{"a": 1, "b": 1},
				{"a": 0, "b": 1},
				{"a": 1, "b": 0},
			},
			// Store buffering is *the* RA/SC divergence: under SC one
			// of the two writes is always visible to the later read.
			SCAllowed: []Outcome{
				{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 0},
			},
			SCForbidden: []Outcome{{"a": 0, "b": 0}},
		},
		{
			Name: "LB+rlx+rlx",
			Prog: lang.Prog{
				lang.SeqC(rd("a", "x"), wr("y", 1)),
				lang.SeqC(rd("b", "y"), wr("x", 1)),
			},
			Init:      zero("x", "y", "a", "b"),
			Observe:   []event.Var{"a", "b"},
			Allowed:   []Outcome{{"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 0}},
			Forbidden: []Outcome{{"a": 1, "b": 1}}, // sb ∪ rf acyclic
			// RAR already forbids load buffering, so the models agree.
			SCAllowed: []Outcome{{"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 0}},
		},
		{
			Name: "CoRR",
			Prog: lang.Prog{
				wr("x", 1),
				lang.SeqC(rd("a", "x"), rd("b", "x")),
			},
			Init:      zero("x", "a", "b"),
			Observe:   []event.Var{"a", "b"},
			Allowed:   []Outcome{{"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}},
			Forbidden: []Outcome{{"a": 1, "b": 0}},
		},
		{
			Name: "CoWW",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wr("x", 2)),
			},
			Init:      zero("x"),
			Observe:   []event.Var{"x"},
			Allowed:   []Outcome{{"x": 2}},
			Forbidden: []Outcome{{"x": 1}, {"x": 0}},
		},
		{
			Name: "CoWR",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), rd("a", "x")),
				wr("x", 2),
			},
			Init:    zero("x", "a"),
			Observe: []event.Var{"a"},
			Allowed: []Outcome{{"a": 1}, {"a": 2}},
			// Reading the initial 0 after writing 1 violates coherence.
			Forbidden: []Outcome{{"a": 0}},
		},
		{
			Name: "2+2W",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wr("y", 2)),
				lang.SeqC(wr("y", 1), wr("x", 2)),
			},
			Init:    zero("x", "y"),
			Observe: []event.Var{"x", "y"},
			Allowed: []Outcome{
				{"x": 1, "y": 1}, // both final writes "early": allowed relaxed
				{"x": 2, "y": 2},
				{"x": 1, "y": 2},
				{"x": 2, "y": 1},
			},
			// Under SC both "early" finals would need each thread's
			// second write to precede the other's first: a cycle.
			SCAllowed: []Outcome{
				{"x": 2, "y": 2}, {"x": 1, "y": 2}, {"x": 2, "y": 1},
			},
			SCForbidden: []Outcome{{"x": 1, "y": 1}},
		},
		{
			Name: "IRIW+rel+acq",
			Prog: lang.Prog{
				wrR("x", 1),
				wrR("y", 1),
				lang.SeqC(rdA("a", "x"), rdA("b", "y")),
				lang.SeqC(rdA("c", "y"), rdA("d", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c", "d"),
			Observe: []event.Var{"a", "b", "c", "d"},
			// The two readers may disagree on the write order: RA does
			// not guarantee multi-copy atomicity.
			Allowed: []Outcome{{"a": 1, "b": 0, "c": 1, "d": 0}},
			// SC is multi-copy atomic: the readers must agree.
			SCAllowed:   []Outcome{{"a": 1, "b": 1, "c": 1, "d": 1}},
			SCForbidden: []Outcome{{"a": 1, "b": 0, "c": 1, "d": 0}},
		},
		{
			Name: "RMW-atomicity",
			Prog: lang.Prog{
				lang.SwapC("t", 1),
				lang.SwapC("t", 2),
			},
			Init:    zero("t"),
			Observe: []event.Var{"t"},
			// Both orders allowed, but the updates serialize.
			Allowed: []Outcome{{"t": 1}, {"t": 2}},
		},
		{
			Name: "WRC+rel+acq", // write-to-read causality
			Prog: lang.Prog{
				wrR("x", 1),
				lang.SeqC(rdA("a", "x"), wrR("y", 1)),
				lang.SeqC(rdA("b", "y"), rdA("c", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c"),
			Observe: []event.Var{"a", "b", "c"},
			// Causality is cumulative through sw;sb chains: if t2 saw
			// x=1 and t3 saw t2's y=1, t3 must see x=1.
			Forbidden: []Outcome{{"a": 1, "b": 1, "c": 0}},
			Allowed:   []Outcome{{"a": 1, "b": 1, "c": 1}, {"a": 1, "b": 0, "c": 0}},
		},
		{
			Name: "WRC+rlx",
			Prog: lang.Prog{
				wr("x", 1),
				lang.SeqC(rd("a", "x"), wr("y", 1)),
				lang.SeqC(rd("b", "y"), rd("c", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c"),
			Observe: []event.Var{"a", "b", "c"},
			// Without synchronisation the causality chain is gone.
			Allowed: []Outcome{{"a": 1, "b": 1, "c": 0}},
			// SC has causality built in, annotations or not.
			SCAllowed:   []Outcome{{"a": 1, "b": 1, "c": 1}},
			SCForbidden: []Outcome{{"a": 1, "b": 1, "c": 0}},
		},
		{
			Name: "S+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 2), wrR("y", 1)),
				lang.SeqC(rdA("a", "y"), wr("x", 1)),
			},
			Init:    zero("x", "y", "a"),
			Observe: []event.Var{"a", "x"},
			// a=1 puts wr(x,2) hb-before wr(x,1), so mo must agree:
			// the final value of x cannot be 2.
			Forbidden: []Outcome{{"a": 1, "x": 2}},
			Allowed:   []Outcome{{"a": 1, "x": 1}, {"a": 0, "x": 1}, {"a": 0, "x": 2}},
		},
		{
			Name: "ISA2+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wrR("y", 1)),
				lang.SeqC(rdA("a", "y"), wrR("z", 1)),
				lang.SeqC(rdA("b", "z"), rdA("c", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c", "z"),
			Observe: []event.Var{"a", "b", "c"},
			// The sw;sb;sw chain transports the relaxed write of x.
			Forbidden: []Outcome{{"a": 1, "b": 1, "c": 0}},
			Allowed:   []Outcome{{"a": 1, "b": 1, "c": 1}},
		},
		{
			Name: "W+RWC", // writes seen out of order without sync
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wrR("f", 1)),
				lang.SeqC(rdA("a", "f"), rd("b", "x")),
				rd("c", "x"),
			},
			Init:    zero("x", "f", "a", "b", "c"),
			Observe: []event.Var{"a", "b", "c"},
			// Synchronised reader must see x=1 after f=1...
			Forbidden: []Outcome{
				{"a": 1, "b": 0, "c": 0}, {"a": 1, "b": 0, "c": 1},
			},
			// ...while the unsynchronised one may still see 0.
			Allowed: []Outcome{{"a": 1, "b": 1, "c": 0}},
		},

		// The Gen-* tests below were found by the random program
		// generator (cmd/c11fuzz) and promoted from its stream: each
		// exhibits a weak behaviour — an RA-reachable, SC-forbidden
		// outcome — through a shape the hand-written tests above do
		// not cover (RMW mixed with plain writes, arithmetic guards,
		// non-atomic writes, negative values). The verdicts are the
		// exact outcome sets of exhaustive explorations under both
		// backends; the same programs ship as testdata/gen-*.lit. Each
		// is regenerable: c11fuzz -seed <s> -n 1.
		{
			Name: "Gen-2+2W-late", // c11fuzz seed 66
			Prog: lang.Prog{
				lang.SeqC(rd("r1_0", "x1"), wr("x0", 2)),
				lang.SeqC(wr("x0", 1), wr("x1", 2), rd("r2_0", "x1")),
			},
			Init:    zero("r1_0", "r2_0", "x0", "x1"),
			Observe: []event.Var{"r1_0", "r2_0", "x0", "x1"},
			// The weak outcome: thread 1 already sees x1=2 yet its
			// earlier-in-mo write x0:=2 loses to thread 2's x0:=1 —
			// a 2+2W-flavoured final-value inversion across threads.
			Allowed: []Outcome{
				{"r1_0": 2, "r2_0": 2, "x0": 1, "x1": 2},
				{"r1_0": 0, "r2_0": 2, "x0": 2, "x1": 2},
			},
			// Thread 2 reads its own x1:=2 back: coherence.
			Forbidden: []Outcome{{"r1_0": 0, "r2_0": 0, "x0": 1, "x1": 2}},
			SCAllowed: []Outcome{
				{"r1_0": 0, "r2_0": 2, "x0": 1, "x1": 2},
				{"r1_0": 2, "r2_0": 2, "x0": 2, "x1": 2},
			},
			SCForbidden: []Outcome{{"r1_0": 2, "r2_0": 2, "x0": 1, "x1": 2}},
		},
		{
			Name: "Gen-swap-mo", // c11fuzz seed 3
			Prog: lang.Prog{
				lang.SeqC(
					wr("x1", 1),
					rd("r1_0", "x0"),
					lang.AssignC("x1", lang.Bin{Op: lang.OpLt, L: lang.X("x0"), R: lang.V(2)}),
					lang.SwapC("x0", 1)),
				lang.SeqC(
					lang.AssignNAC("x1", lang.V(-2)),
					wr("x1", 2),
					wrR("x0", 1)),
			},
			Init:    zero("r1_0", "x0", "x1"),
			Observe: []event.Var{"r1_0", "x0", "x1"},
			// Weak: thread 1 reads x0=1 (so its swap serialised after
			// the release write) yet x1's final value is thread 2's
			// earlier x1:=2 — impossible under any interleaving.
			Allowed: []Outcome{
				{"r1_0": 1, "x0": 1, "x1": 2},
				{"r1_0": 0, "x0": 1, "x1": 1},
			},
			// The non-atomic x1:=-2 is always overwritten by thread
			// 2's own x1:=2 in mo: it can never be the final value.
			Forbidden: []Outcome{{"r1_0": 0, "x0": 1, "x1": -2}},
			SCAllowed: []Outcome{
				{"r1_0": 0, "x0": 1, "x1": 2},
				{"r1_0": 1, "x0": 1, "x1": 1},
			},
			SCForbidden: []Outcome{{"r1_0": 1, "x0": 1, "x1": 2}},
		},
		{
			Name: "Gen-swap-stale", // c11fuzz seed 37
			Prog: lang.Prog{
				lang.SeqC(
					rd("r1_0", "x1"),
					wr("x0", 2),
					lang.SwapC("x1", 1),
					wr("x0", 1)),
				lang.SeqC(
					wr("x1", -1),
					rdA("r2_0", "x0")),
			},
			Init:    zero("r1_0", "r2_0", "x0", "x1"),
			Observe: []event.Var{"r1_0", "r2_0", "x0", "x1"},
			// Weak: thread 1's RMW took x1=-1 as its read (final x1=-1
			// is impossible otherwise... it is possible: the RMW reads
			// the init and thread 2's write lands mo-after the update)
			// while thread 2's acquire read still sees the initial x0
			// — staleness across an RMW the interleaving semantics
			// cannot produce.
			Allowed: []Outcome{
				{"r1_0": 0, "r2_0": 0, "x0": 1, "x1": -1},
				{"r1_0": -1, "r2_0": 2, "x0": 1, "x1": 1},
			},
			// r1_0=1 would read thread 1's own later swap.
			Forbidden: []Outcome{{"r1_0": 1, "r2_0": 0, "x0": 1, "x1": 1}},
			SCAllowed: []Outcome{
				{"r1_0": 0, "r2_0": 1, "x0": 1, "x1": -1},
				{"r1_0": -1, "r2_0": 0, "x0": 1, "x1": 1},
			},
			SCForbidden: []Outcome{{"r1_0": 0, "r2_0": 0, "x0": 1, "x1": -1}},
		},
		{
			Name: "Gen-guard-swap", // c11fuzz seed 52
			Prog: lang.Prog{
				lang.SeqC(
					wr("x1", 1),
					lang.IfC(
						lang.Bin{Op: lang.OpSub, L: lang.X("x1"), R: lang.V(2)},
						lang.AssignC("x1", lang.Ne(lang.X("x0"), lang.V(2))),
						lang.SkipC()),
					wr("x0", 2),
					wr("x1", 1)),
				lang.SeqC(
					rd("r2_0", "x1"),
					lang.SwapC("x0", 1),
					rdA("r2_1", "x1")),
			},
			Init:    zero("r2_0", "r2_1", "x0", "x1"),
			Observe: []event.Var{"r2_0", "r2_1", "x0", "x1"},
			// Weak: both of thread 2's reads are stale (r2_0=r2_1=0)
			// although its RMW on x0 serialised after thread 1's
			// x0:=2 (final x0=1).
			Allowed: []Outcome{
				{"r2_0": 0, "r2_1": 0, "x0": 1, "x1": 1},
				{"r2_0": 1, "r2_1": 1, "x0": 2, "x1": 1},
			},
			// Reading x1=1 and then acquire-reading the initial 0
			// again would violate coherence.
			Forbidden: []Outcome{{"r2_0": 1, "r2_1": 0, "x0": 1, "x1": 1}},
			SCAllowed: []Outcome{
				{"r2_0": 0, "r2_1": 0, "x0": 2, "x1": 1},
				{"r2_0": 1, "r2_1": 1, "x0": 1, "x1": 1},
			},
			SCForbidden: []Outcome{{"r2_0": 0, "r2_1": 0, "x0": 1, "x1": 1}},
		},
		{
			// (The generator also found a two-RMW negative-value
			// shape, shipped as testdata/gen-neg-swap.lit only: its
			// derived values widen the axiomatic value domain enough
			// to make the generate-and-test baseline minutes-slow, so
			// it is exercised through the operational pipeline.)
			Name: "Gen-ctrl-dep", // c11fuzz seed 33
			Prog: lang.Prog{
				lang.IfC(lang.Ne(lang.X("x0"), lang.V(2)),
					lang.SeqC(
						lang.IfC(lang.Ne(lang.X("x1"), lang.V(2)),
							lang.SeqC(
								lang.AssignC("x0", lang.Bin{Op: lang.OpLt, L: lang.X("x1"), R: lang.V(2)}),
								wr("x0", 1)),
							lang.SkipC()),
						wr("x1", 1)),
					lang.SkipC()),
				lang.SeqC(
					wr("x0", 1),
					lang.IfC(lang.Ne(lang.X("x1"), lang.V(-1)),
						lang.SeqC(wr("x0", 1), rd("r2_0", "x1")),
						lang.SkipC()),
					wrR("x0", 2)),
			},
			Init:    zero("r2_0", "x0", "x1"),
			Observe: []event.Var{"r2_0", "x0", "x1"},
			// Weak: thread 2 reads x1=1 — a write control-dependent
			// on thread 1's guards — yet its own release write x0:=2
			// still loses the modification order to an earlier x0=1.
			Allowed: []Outcome{
				{"r2_0": 1, "x0": 1, "x1": 1},
				{"r2_0": 0, "x0": 2, "x1": 0},
			},
			// x1 is only ever written 1: r2_0=2 is unreadable.
			Forbidden: []Outcome{{"r2_0": 2, "x0": 2, "x1": 1}},
			SCAllowed: []Outcome{
				{"r2_0": 0, "x0": 1, "x1": 1},
				{"r2_0": 1, "x0": 2, "x1": 1},
			},
			SCForbidden: []Outcome{{"r2_0": 1, "x0": 1, "x1": 1}},
		},
	}
}

// Peterson returns Algorithm 1: the release-acquire Peterson lock.
// The critical section is the labelled skip "cs"; mutual exclusion is
// the property that the two threads are never simultaneously at that
// label.
func Peterson() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(swapTurn, acquireFlagGuard, releaseReset), petersonInit()
}

// PetersonWeakTurn replaces the release-acquire swap of line 3 with a
// plain relaxed write — the classic broken variant: without the
// synchronising update, each thread can miss the other's flag.
func PetersonWeakTurn() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(plainTurn, acquireFlagGuard, releaseReset), petersonInit()
}

// PetersonRelaxedGuard drops the acquire annotation on the flag read
// in the busy-wait guard (line 4) but keeps the RA swap.
func PetersonRelaxedGuard() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(swapTurn, relaxedFlagGuard, releaseReset), petersonInit()
}

// PetersonRelaxedReset downgrades the flag reset of line 6 from
// release to relaxed, keeping everything else.
func PetersonRelaxedReset() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(swapTurn, acquireFlagGuard, relaxedReset), petersonInit()
}

func petersonInit() map[event.Var]event.Val {
	return map[event.Var]event.Val{"flag1": 0, "flag2": 0, "turn": 1}
}

type turnStyle int

const (
	swapTurn turnStyle = iota
	plainTurn
)

type guardStyle int

const (
	acquireFlagGuard guardStyle = iota
	relaxedFlagGuard
)

type resetStyle int

const (
	releaseReset resetStyle = iota
	relaxedReset
)

func petersonWith(ts turnStyle, gs guardStyle, rs resetStyle) lang.Prog {
	thread := func(t int) lang.Com {
		other := 3 - t
		me := event.Var(fmt.Sprintf("flag%d", t))
		you := event.Var(fmt.Sprintf("flag%d", other))

		var setTurn lang.Com
		switch ts {
		case swapTurn:
			setTurn = lang.SwapC("turn", event.Val(other))
		case plainTurn:
			setTurn = lang.AssignC("turn", lang.V(event.Val(other)))
		}

		var flagRead lang.Expr
		switch gs {
		case acquireFlagGuard:
			flagRead = lang.XA(you)
		case relaxedFlagGuard:
			flagRead = lang.X(you)
		}
		guard := lang.And(
			lang.Eq(flagRead, lang.B(true)),
			lang.Eq(lang.X("turn"), lang.V(event.Val(other))),
		)

		var reset lang.Com
		switch rs {
		case releaseReset:
			reset = lang.AssignRelC(me, lang.B(false))
		case relaxedReset:
			reset = lang.AssignC(me, lang.B(false))
		}

		return lang.SeqC(
			lang.AssignC(me, lang.B(true)),   // line 2 (relaxed)
			setTurn,                          // line 3
			lang.WhileC(guard, lang.SkipC()), // line 4
			lang.LabelC("cs", lang.SkipC()),  // line 5
			reset,                            // line 6
		)
	}
	return lang.Prog{thread(1), thread(2)}
}

// MutualExclusion is the safety property of Theorem 5.8: the two
// threads are never both at the critical-section label. It observes
// only program counters, so it is meaningful under every memory model
// (and preserved by the partial-order reduction, which keeps
// label-visible interleavings).
func MutualExclusion(c model.Config) bool {
	p := c.Program()
	return !(lang.AtLabel(p.Thread(1)) == "cs" && lang.AtLabel(p.Thread(2)) == "cs")
}
