// Package litmus provides the classic weak-memory litmus tests
// expressed in the paper's command language, with their expected
// verdicts under the RAR fragment, plus the Peterson mutual-exclusion
// programs of Algorithm 1 (and deliberately weakened variants used as
// negative controls). Each test runs both through the operational
// explorer and — at litmus sizes — through the axiomatic
// generate-and-test baseline, and the two verdicts are cross-checked.
package litmus

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
)

// Outcome is an assignment of final values to observed variables. The
// final value of a variable is the value of its mo-last write.
type Outcome map[event.Var]event.Val

// Key renders the outcome over the observed variables, in the same
// format Report.Outcomes uses.
func (o Outcome) Key(observe []event.Var) string { return o.key(observe) }

func (o Outcome) key(observe []event.Var) string {
	var b strings.Builder
	for _, x := range observe {
		fmt.Fprintf(&b, "%s=%d;", x, o[x])
	}
	return b.String()
}

// Test is one litmus test.
type Test struct {
	// Name identifies the test (e.g. "MP+rel+acq").
	Name string
	// Prog and Init define the program and initial memory.
	Prog lang.Prog
	Init map[event.Var]event.Val
	// Observe lists the variables whose final values form an outcome.
	Observe []event.Var
	// Allowed outcomes must be reachable; Forbidden must not.
	Allowed   []Outcome
	Forbidden []Outcome
	// MaxEvents bounds exploration (0: default).
	MaxEvents int
}

// Report is the verdict of running a test.
type Report struct {
	Test     *Test
	Outcomes map[string]bool // reachable outcome keys
	// MissingAllowed and ReachedForbidden list violated expectations.
	MissingAllowed   []string
	ReachedForbidden []string
	Explored         int
	Truncated        bool
	// FingerprintCollisions reports the explorer's fingerprint audit;
	// only populated when the run sets Options.CheckCollisions.
	FingerprintCollisions int
}

// Pass reports whether every expectation held.
func (r Report) Pass() bool {
	return len(r.MissingAllowed) == 0 && len(r.ReachedForbidden) == 0
}

// Summary renders a one-line verdict.
func (r Report) Summary() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("%-24s %s  outcomes=%d explored=%d %s",
		r.Test.Name, verdict, len(r.Outcomes), r.Explored, strings.Join(keys, " "))
}

// Run explores the test operationally and checks expectations.
func (t *Test) Run(opts explore.Options) Report {
	if opts.MaxEvents == 0 {
		opts.MaxEvents = t.MaxEvents
	}
	cfg := core.NewConfig(t.Prog, t.Init)
	rep := Report{Test: t, Outcomes: map[string]bool{}}

	summarise := func(c core.Config) string {
		o := Outcome{}
		for _, x := range t.Observe {
			g, ok := c.S.Last(x)
			if !ok {
				continue
			}
			o[x] = c.S.Event(g).WrVal()
		}
		return o.key(t.Observe)
	}

	// The property runs concurrently under a parallel explorer; the
	// outcome set is the only shared state and is mutex-guarded.
	var mu sync.Mutex
	res := explore.Run(cfg, explore.Options{
		MaxEvents:       opts.MaxEvents,
		MaxConfigs:      opts.MaxConfigs,
		Workers:         opts.Workers,
		CheckCollisions: opts.CheckCollisions,
		Property: func(c core.Config) bool {
			if c.Terminated() {
				key := summarise(c)
				mu.Lock()
				rep.Outcomes[key] = true
				mu.Unlock()
			}
			return true
		},
	})
	rep.Explored = res.Explored
	rep.Truncated = res.Truncated
	rep.FingerprintCollisions = res.FingerprintCollisions

	for _, o := range t.Allowed {
		if !rep.Outcomes[o.key(t.Observe)] {
			rep.MissingAllowed = append(rep.MissingAllowed, o.key(t.Observe))
		}
	}
	for _, o := range t.Forbidden {
		if rep.Outcomes[o.key(t.Observe)] {
			rep.ReachedForbidden = append(rep.ReachedForbidden, o.key(t.Observe))
		}
	}
	return rep
}

// seqAsn builds var := e chains tersely.
func wr(x event.Var, v event.Val) lang.Com  { return lang.AssignC(x, lang.V(v)) }
func wrR(x event.Var, v event.Val) lang.Com { return lang.AssignRelC(x, lang.V(v)) }
func rd(dst, src event.Var) lang.Com        { return lang.AssignC(dst, lang.X(src)) }
func rdA(dst, src event.Var) lang.Com       { return lang.AssignC(dst, lang.XA(src)) }

// Suite returns the full litmus catalog.
func Suite() []*Test {
	zero := func(xs ...event.Var) map[event.Var]event.Val {
		m := map[event.Var]event.Val{}
		for _, x := range xs {
			m[x] = 0
		}
		return m
	}
	return []*Test{
		{
			Name: "MP+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wr("d", 5), wrR("f", 1)),
				lang.SeqC(rdA("a", "f"), rd("b", "d")),
			},
			Init:    zero("d", "f", "a", "b"),
			Observe: []event.Var{"a", "b"},
			Allowed: []Outcome{
				{"a": 0, "b": 0}, {"a": 0, "b": 5}, {"a": 1, "b": 5},
			},
			Forbidden: []Outcome{{"a": 1, "b": 0}},
		},
		{
			Name: "MP+rlx+rlx",
			Prog: lang.Prog{
				lang.SeqC(wr("d", 5), wr("f", 1)),
				lang.SeqC(rd("a", "f"), rd("b", "d")),
			},
			Init:    zero("d", "f", "a", "b"),
			Observe: []event.Var{"a", "b"},
			Allowed: []Outcome{
				{"a": 1, "b": 0}, // the stale read is allowed relaxed
				{"a": 1, "b": 5},
			},
		},
		{
			Name: "SB+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wrR("x", 1), rdA("a", "y")),
				lang.SeqC(wrR("y", 1), rdA("b", "x")),
			},
			Init:    zero("x", "y", "a", "b"),
			Observe: []event.Var{"a", "b"},
			Allowed: []Outcome{
				{"a": 0, "b": 0}, // RA is weaker than SC
				{"a": 1, "b": 1},
				{"a": 0, "b": 1},
				{"a": 1, "b": 0},
			},
		},
		{
			Name: "LB+rlx+rlx",
			Prog: lang.Prog{
				lang.SeqC(rd("a", "x"), wr("y", 1)),
				lang.SeqC(rd("b", "y"), wr("x", 1)),
			},
			Init:      zero("x", "y", "a", "b"),
			Observe:   []event.Var{"a", "b"},
			Allowed:   []Outcome{{"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 0}},
			Forbidden: []Outcome{{"a": 1, "b": 1}}, // sb ∪ rf acyclic
		},
		{
			Name: "CoRR",
			Prog: lang.Prog{
				wr("x", 1),
				lang.SeqC(rd("a", "x"), rd("b", "x")),
			},
			Init:      zero("x", "a", "b"),
			Observe:   []event.Var{"a", "b"},
			Allowed:   []Outcome{{"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}},
			Forbidden: []Outcome{{"a": 1, "b": 0}},
		},
		{
			Name: "CoWW",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wr("x", 2)),
			},
			Init:      zero("x"),
			Observe:   []event.Var{"x"},
			Allowed:   []Outcome{{"x": 2}},
			Forbidden: []Outcome{{"x": 1}, {"x": 0}},
		},
		{
			Name: "CoWR",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), rd("a", "x")),
				wr("x", 2),
			},
			Init:    zero("x", "a"),
			Observe: []event.Var{"a"},
			Allowed: []Outcome{{"a": 1}, {"a": 2}},
			// Reading the initial 0 after writing 1 violates coherence.
			Forbidden: []Outcome{{"a": 0}},
		},
		{
			Name: "2+2W",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wr("y", 2)),
				lang.SeqC(wr("y", 1), wr("x", 2)),
			},
			Init:    zero("x", "y"),
			Observe: []event.Var{"x", "y"},
			Allowed: []Outcome{
				{"x": 1, "y": 1}, // both final writes "early": allowed relaxed
				{"x": 2, "y": 2},
				{"x": 1, "y": 2},
				{"x": 2, "y": 1},
			},
		},
		{
			Name: "IRIW+rel+acq",
			Prog: lang.Prog{
				wrR("x", 1),
				wrR("y", 1),
				lang.SeqC(rdA("a", "x"), rdA("b", "y")),
				lang.SeqC(rdA("c", "y"), rdA("d", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c", "d"),
			Observe: []event.Var{"a", "b", "c", "d"},
			// The two readers may disagree on the write order: RA does
			// not guarantee multi-copy atomicity.
			Allowed: []Outcome{{"a": 1, "b": 0, "c": 1, "d": 0}},
		},
		{
			Name: "RMW-atomicity",
			Prog: lang.Prog{
				lang.SwapC("t", 1),
				lang.SwapC("t", 2),
			},
			Init:    zero("t"),
			Observe: []event.Var{"t"},
			// Both orders allowed, but the updates serialize.
			Allowed: []Outcome{{"t": 1}, {"t": 2}},
		},
		{
			Name: "WRC+rel+acq", // write-to-read causality
			Prog: lang.Prog{
				wrR("x", 1),
				lang.SeqC(rdA("a", "x"), wrR("y", 1)),
				lang.SeqC(rdA("b", "y"), rdA("c", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c"),
			Observe: []event.Var{"a", "b", "c"},
			// Causality is cumulative through sw;sb chains: if t2 saw
			// x=1 and t3 saw t2's y=1, t3 must see x=1.
			Forbidden: []Outcome{{"a": 1, "b": 1, "c": 0}},
			Allowed:   []Outcome{{"a": 1, "b": 1, "c": 1}, {"a": 1, "b": 0, "c": 0}},
		},
		{
			Name: "WRC+rlx",
			Prog: lang.Prog{
				wr("x", 1),
				lang.SeqC(rd("a", "x"), wr("y", 1)),
				lang.SeqC(rd("b", "y"), rd("c", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c"),
			Observe: []event.Var{"a", "b", "c"},
			// Without synchronisation the causality chain is gone.
			Allowed: []Outcome{{"a": 1, "b": 1, "c": 0}},
		},
		{
			Name: "S+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 2), wrR("y", 1)),
				lang.SeqC(rdA("a", "y"), wr("x", 1)),
			},
			Init:    zero("x", "y", "a"),
			Observe: []event.Var{"a", "x"},
			// a=1 puts wr(x,2) hb-before wr(x,1), so mo must agree:
			// the final value of x cannot be 2.
			Forbidden: []Outcome{{"a": 1, "x": 2}},
			Allowed:   []Outcome{{"a": 1, "x": 1}, {"a": 0, "x": 1}, {"a": 0, "x": 2}},
		},
		{
			Name: "ISA2+rel+acq",
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wrR("y", 1)),
				lang.SeqC(rdA("a", "y"), wrR("z", 1)),
				lang.SeqC(rdA("b", "z"), rdA("c", "x")),
			},
			Init:    zero("x", "y", "a", "b", "c", "z"),
			Observe: []event.Var{"a", "b", "c"},
			// The sw;sb;sw chain transports the relaxed write of x.
			Forbidden: []Outcome{{"a": 1, "b": 1, "c": 0}},
			Allowed:   []Outcome{{"a": 1, "b": 1, "c": 1}},
		},
		{
			Name: "W+RWC", // writes seen out of order without sync
			Prog: lang.Prog{
				lang.SeqC(wr("x", 1), wrR("f", 1)),
				lang.SeqC(rdA("a", "f"), rd("b", "x")),
				rd("c", "x"),
			},
			Init:    zero("x", "f", "a", "b", "c"),
			Observe: []event.Var{"a", "b", "c"},
			// Synchronised reader must see x=1 after f=1...
			Forbidden: []Outcome{
				{"a": 1, "b": 0, "c": 0}, {"a": 1, "b": 0, "c": 1},
			},
			// ...while the unsynchronised one may still see 0.
			Allowed: []Outcome{{"a": 1, "b": 1, "c": 0}},
		},
	}
}

// Peterson returns Algorithm 1: the release-acquire Peterson lock.
// The critical section is the labelled skip "cs"; mutual exclusion is
// the property that the two threads are never simultaneously at that
// label.
func Peterson() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(swapTurn, acquireFlagGuard, releaseReset), petersonInit()
}

// PetersonWeakTurn replaces the release-acquire swap of line 3 with a
// plain relaxed write — the classic broken variant: without the
// synchronising update, each thread can miss the other's flag.
func PetersonWeakTurn() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(plainTurn, acquireFlagGuard, releaseReset), petersonInit()
}

// PetersonRelaxedGuard drops the acquire annotation on the flag read
// in the busy-wait guard (line 4) but keeps the RA swap.
func PetersonRelaxedGuard() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(swapTurn, relaxedFlagGuard, releaseReset), petersonInit()
}

// PetersonRelaxedReset downgrades the flag reset of line 6 from
// release to relaxed, keeping everything else.
func PetersonRelaxedReset() (lang.Prog, map[event.Var]event.Val) {
	return petersonWith(swapTurn, acquireFlagGuard, relaxedReset), petersonInit()
}

func petersonInit() map[event.Var]event.Val {
	return map[event.Var]event.Val{"flag1": 0, "flag2": 0, "turn": 1}
}

type turnStyle int

const (
	swapTurn turnStyle = iota
	plainTurn
)

type guardStyle int

const (
	acquireFlagGuard guardStyle = iota
	relaxedFlagGuard
)

type resetStyle int

const (
	releaseReset resetStyle = iota
	relaxedReset
)

func petersonWith(ts turnStyle, gs guardStyle, rs resetStyle) lang.Prog {
	thread := func(t int) lang.Com {
		other := 3 - t
		me := event.Var(fmt.Sprintf("flag%d", t))
		you := event.Var(fmt.Sprintf("flag%d", other))

		var setTurn lang.Com
		switch ts {
		case swapTurn:
			setTurn = lang.SwapC("turn", event.Val(other))
		case plainTurn:
			setTurn = lang.AssignC("turn", lang.V(event.Val(other)))
		}

		var flagRead lang.Expr
		switch gs {
		case acquireFlagGuard:
			flagRead = lang.XA(you)
		case relaxedFlagGuard:
			flagRead = lang.X(you)
		}
		guard := lang.And(
			lang.Eq(flagRead, lang.B(true)),
			lang.Eq(lang.X("turn"), lang.V(event.Val(other))),
		)

		var reset lang.Com
		switch rs {
		case releaseReset:
			reset = lang.AssignRelC(me, lang.B(false))
		case relaxedReset:
			reset = lang.AssignC(me, lang.B(false))
		}

		return lang.SeqC(
			lang.AssignC(me, lang.B(true)),   // line 2 (relaxed)
			setTurn,                          // line 3
			lang.WhileC(guard, lang.SkipC()), // line 4
			lang.LabelC("cs", lang.SkipC()),  // line 5
			reset,                            // line 6
		)
	}
	return lang.Prog{thread(1), thread(2)}
}

// MutualExclusion is the safety property of Theorem 5.8: the two
// threads are never both at the critical-section label.
func MutualExclusion(c core.Config) bool {
	return !(lang.AtLabel(c.P.Thread(1)) == "cs" && lang.AtLabel(c.P.Thread(2)) == "cs")
}
