package litmus

// Differential model checking: run the same test under two memory
// models and diff the reachable outcome sets. Because every backend
// renders outcomes through the shared model.Config.Summarise format,
// the sets are directly comparable; the difference RAR \ SC is
// exactly the test's weak behaviours (store buffering, the stale read
// of relaxed message passing, IRIW disagreement, …), and SC \ RAR
// must always be empty — SC refines RAR, so a non-empty right column
// is a bug in one of the backends, not a property of the program.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/explore"
	"repro/internal/model"
)

// DiffReport is the outcome-set comparison of one test under two
// models.
type DiffReport struct {
	Test *Test
	// ModelA and ModelB name the compared backends.
	ModelA, ModelB string
	// OutcomesA and OutcomesB are the reachable outcome sets.
	OutcomesA, OutcomesB map[string]bool
	// OnlyA and OnlyB list outcomes reachable under exactly one
	// model, sorted. With A=rar and B=sc, OnlyA are the weak
	// behaviours and OnlyB must be empty.
	OnlyA, OnlyB []string
	// ExploredA and ExploredB count distinct configurations each
	// search visited (the state-space cost of the weaker model).
	ExploredA, ExploredB int
	// TruncatedA and TruncatedB report that a search did not cover its
	// full bounded space — a progress/configuration bound cut it, or a
	// resource budget (deadline, cancellation, memory) stopped it
	// early. A truncated search makes the diff relative to what was
	// explored.
	TruncatedA, TruncatedB bool
}

// Agree reports whether the models produced identical outcome sets.
func (d DiffReport) Agree() bool { return len(d.OnlyA) == 0 && len(d.OnlyB) == 0 }

// String renders a one-line summary.
func (d DiffReport) String() string {
	status := "AGREE"
	if !d.Agree() {
		status = "DIFFER"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %s  %s=%d outcomes (%d states), %s=%d outcomes (%d states)",
		d.Test.Name, status,
		d.ModelA, len(d.OutcomesA), d.ExploredA,
		d.ModelB, len(d.OutcomesB), d.ExploredB)
	if len(d.OnlyA) > 0 {
		fmt.Fprintf(&b, "  only-%s: %s", d.ModelA, strings.Join(d.OnlyA, " "))
	}
	if len(d.OnlyB) > 0 {
		fmt.Fprintf(&b, "  only-%s: %s", d.ModelB, strings.Join(d.OnlyB, " "))
	}
	return b.String()
}

// Diff runs the test under both models and compares the outcome sets.
// Expectations are not checked (use RunModel for verdicts); the diff
// is purely observational.
func (t *Test) Diff(a, b model.Model, opts explore.Options) DiffReport {
	if opts.MaxEvents == 0 {
		opts.MaxEvents = t.MaxEvents
	}
	d := DiffReport{Test: t, ModelA: a.Name(), ModelB: b.Name()}

	resA, outA := runOutcomes(a.New(t.Prog, t.Init), t.Observe, opts)
	resB, outB := runOutcomes(b.New(t.Prog, t.Init), t.Observe, opts)
	d.OutcomesA, d.OutcomesB = outA, outB
	d.ExploredA, d.ExploredB = resA.Explored, resB.Explored
	d.TruncatedA = resA.Truncated || resA.Stop != explore.StopNone
	d.TruncatedB = resB.Truncated || resB.Stop != explore.StopNone

	for k := range outA {
		if !outB[k] {
			d.OnlyA = append(d.OnlyA, k)
		}
	}
	for k := range outB {
		if !outA[k] {
			d.OnlyB = append(d.OnlyB, k)
		}
	}
	sort.Strings(d.OnlyA)
	sort.Strings(d.OnlyB)
	return d
}
