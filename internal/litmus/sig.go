package litmus

// Canonical binary identity of a litmus test, built on the prefix-free
// signature encoding of internal/lang. Two Test values with the same
// semantics — same program structure, initial memory, observation
// list and expectation sets — produce identical signatures, and any
// structural difference changes the bytes. The verification service
// hashes this (together with the model name and the effective search
// options) into its result-cache key, so identical queries are cache
// hits and retries are idempotent regardless of how the request was
// spelled (test Name and JSON field order deliberately do not
// participate).

import (
	"encoding/binary"
	"sort"

	"repro/internal/event"
	"repro/internal/lang"
)

// AppendSig appends the canonical encoding of the test's semantic
// identity to buf: program, initial memory (sorted by variable),
// observation list (in order — it determines outcome-key layout), the
// per-model expectation sets (as sorted outcome keys) and the event
// bound. The Name is excluded: it labels, it does not identify.
func (t *Test) AppendSig(buf []byte) []byte {
	buf = lang.AppendProgSig(buf, t.Prog)

	vars := make([]event.Var, 0, len(t.Init))
	for x := range t.Init {
		vars = append(vars, x)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	buf = binary.AppendUvarint(buf, uint64(len(vars)))
	for _, x := range vars {
		buf = lang.AppendStringSig(buf, string(x))
		buf = binary.AppendVarint(buf, int64(t.Init[x]))
	}

	buf = binary.AppendUvarint(buf, uint64(len(t.Observe)))
	for _, x := range t.Observe {
		buf = lang.AppendStringSig(buf, string(x))
	}

	for _, set := range [][]Outcome{t.Allowed, t.Forbidden, t.SCAllowed, t.SCForbidden} {
		keys := make([]string, len(set))
		for i, o := range set {
			keys[i] = o.key(t.Observe)
		}
		sort.Strings(keys)
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = lang.AppendStringSig(buf, k)
		}
	}

	return binary.AppendVarint(buf, int64(t.MaxEvents))
}
