package litmus

import (
	"math/rand"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/event"
	"repro/internal/lang"
)

// Differential testing: random loop-free programs, executed through
// the operational semantics and through the axiomatic generate-and-
// test procedure, must produce identical execution sets (Theorems 4.4
// and 4.8 together). This is the strongest internal consistency check
// in the repository: any divergence in observability, mo insertion,
// justification search or replay shows up as a set difference.

// randProgram generates a loop-free program: 2–3 threads, 2–4
// statements each, over 2 shared variables and small values, with
// random annotations (including updates and non-atomics).
func randProgram(rng *rand.Rand) (lang.Prog, map[event.Var]event.Val) {
	vars := []event.Var{"x", "y"}
	regs := []event.Var{"r1", "r2", "r3", "r4", "r5", "r6"}
	regIdx := 0
	nThreads := 2

	randLoad := func(x event.Var) lang.Expr {
		switch rng.Intn(3) {
		case 0:
			return lang.XA(x)
		case 1:
			return lang.XNA(x)
		default:
			return lang.X(x)
		}
	}

	p := make(lang.Prog, nThreads)
	for t := range p {
		nStmts := 2 + rng.Intn(2)
		stmts := make([]lang.Com, 0, nStmts)
		for s := 0; s < nStmts; s++ {
			x := vars[rng.Intn(len(vars))]
			v := event.Val(1 + rng.Intn(2))
			switch rng.Intn(5) {
			case 0: // relaxed or release or NA write
				switch rng.Intn(3) {
				case 0:
					stmts = append(stmts, lang.AssignRelC(x, lang.V(v)))
				case 1:
					stmts = append(stmts, lang.AssignNAC(x, lang.V(v)))
				default:
					stmts = append(stmts, lang.AssignC(x, lang.V(v)))
				}
			case 1: // swap
				stmts = append(stmts, lang.SwapC(x, v))
			case 2, 3: // read into a register
				if regIdx < len(regs) {
					stmts = append(stmts, lang.AssignC(regs[regIdx], randLoad(x)))
					regIdx++
				} else {
					stmts = append(stmts, lang.AssignC(x, lang.V(v)))
				}
			case 4: // conditional on a read
				if regIdx < len(regs) {
					inner := lang.AssignC(regs[regIdx], lang.V(9))
					regIdx++
					stmts = append(stmts, lang.IfC(
						lang.Eq(randLoad(x), lang.V(1)), inner, lang.SkipC()))
				} else {
					stmts = append(stmts, lang.SkipC())
				}
			}
		}
		p[t] = lang.SeqC(stmts...)
	}
	init := map[event.Var]event.Val{"x": 0, "y": 0}
	for i := 0; i < regIdx; i++ {
		init[regs[i]] = 0
	}
	return p, init
}

func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20190220))
	trials := 50
	if testing.Short() {
		trials = 10
	}
	for i := 0; i < trials; i++ {
		p, vars := randProgram(rng)
		op := axiomatic.OperationalExecutions(p, vars)
		ax := axiomatic.ValidExecutions(p, vars, 48)
		if len(op) == 0 {
			t.Fatalf("trial %d: no operational executions for %s", i, p)
		}
		for sig := range op {
			if _, ok := ax[sig]; !ok {
				t.Fatalf("trial %d: operational-only execution (soundness breach)\nprogram: %s\n%s",
					i, p, sig)
			}
		}
		for sig := range ax {
			if _, ok := op[sig]; !ok {
				t.Fatalf("trial %d: axiomatic-only execution (completeness breach)\nprogram: %s\n%s",
					i, p, sig)
			}
		}
	}
}

// Every execution from the differential runs also replays (Theorem
// 4.8) and satisfies both consistency predicates (Theorem C.5 applied
// to real program executions rather than synthetic candidates).
func TestDifferentialReplayAndConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 15; i++ {
		p, vars := randProgram(rng)
		for sig, x := range axiomatic.OperationalExecutions(p, vars) {
			if !x.CoherentDef42() || !x.WeakCanonicalConsistent() {
				t.Fatalf("trial %d: inconsistent reachable execution %s", i, sig)
			}
			st, err := x.ReplayFull()
			if err != nil {
				t.Fatalf("trial %d: replay failed: %v", i, err)
			}
			if axiomatic.FromState(st).CanonicalSignature() != sig {
				t.Fatalf("trial %d: replay diverged", i)
			}
		}
	}
}
