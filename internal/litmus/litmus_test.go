package litmus

import (
	"strings"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/model"
)

func TestSuiteAllPass(t *testing.T) {
	for _, tc := range Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			rep := tc.Run(explore.Options{MaxEvents: 20})
			if !rep.Pass() {
				t.Fatalf("verdict: %s\nmissing allowed: %v\nreached forbidden: %v",
					rep.Summary(), rep.MissingAllowed, rep.ReachedForbidden)
			}
			if rep.Truncated {
				t.Fatalf("litmus exploration truncated: %s", rep.Summary())
			}
			if len(rep.Outcomes) == 0 {
				t.Fatal("no outcomes")
			}
		})
	}
}

func TestReportSummaryRendering(t *testing.T) {
	tc := Suite()[0]
	rep := tc.Run(explore.Options{})
	s := rep.Summary()
	if !strings.Contains(s, tc.Name) || !strings.Contains(s, "PASS") {
		t.Fatalf("summary = %q", s)
	}
}

// Cross-check: for each loop-free litmus test, the outcome set via the
// operational explorer equals the outcome set via the axiomatic
// generate-and-test procedure.
func TestSuiteOperationalAxiomaticAgree(t *testing.T) {
	for _, tc := range Suite() {
		tc := tc
		if tc.Name == "IRIW+rel+acq" && testing.Short() {
			continue
		}
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			ax := axiomatic.ValidExecutions(tc.Prog, tc.Init, 40)
			op := axiomatic.OperationalExecutions(tc.Prog, tc.Init)
			if len(ax) != len(op) {
				t.Fatalf("|axiomatic| = %d, |operational| = %d", len(ax), len(op))
			}
			for sig := range op {
				if _, ok := ax[sig]; !ok {
					t.Fatalf("operational-only execution:\n%s", sig)
				}
			}
		})
	}
}

// Theorem 5.8 at bounded depth: the RA Peterson lock is mutually
// exclusive for every execution within the event bound.
func TestPetersonMutualExclusion(t *testing.T) {
	p, vars := Peterson()
	res := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 14,
		Property:  MutualExclusion,
	})
	if res.Violation != nil {
		bad := res.Violation.(core.Config)
		t.Fatalf("mutual exclusion violated:\n%s\n%s", bad.P, bad.S)
	}
	if res.Explored < 100 {
		t.Fatalf("suspiciously small exploration: %d", res.Explored)
	}
}

// Negative control: replacing the RA swap with a plain write breaks
// mutual exclusion, and the explorer finds a witness.
func TestPetersonWeakTurnViolates(t *testing.T) {
	p, vars := PetersonWeakTurn()
	trace, found := explore.FindTrace(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 14,
	}, func(c model.Config) bool { return !MutualExclusion(c) })
	if !found {
		t.Fatal("weak-turn Peterson should violate mutual exclusion")
	}
	if len(trace.Configs) < 3 {
		t.Fatalf("degenerate witness of length %d", len(trace.Configs))
	}
	last := trace.Configs[len(trace.Configs)-1]
	if MutualExclusion(last) {
		t.Fatal("witness end state not a violation")
	}
}

// Ablation: relaxing the acquire on the guard's flag read also breaks
// mutual exclusion — without the sw edge, a thread can pass the guard
// on a stale flag while holding an outdated turn view? Verify
// empirically; if safe at this bound, the test records that instead.
func TestPetersonGuardAnnotationAblation(t *testing.T) {
	p, vars := PetersonRelaxedGuard()
	_, found := explore.FindTrace(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
	}, func(c model.Config) bool { return !MutualExclusion(c) })
	// The paper's proof uses the acquire annotation only through the
	// Transfer rule; the mutual-exclusion argument rests on the RA
	// swap (invariants 5, 8, 9). At this bound the relaxed-guard
	// variant remains safe — record the empirical verdict.
	if found {
		t.Log("relaxed-guard Peterson violated mutual exclusion at bound 12")
	} else {
		t.Log("relaxed-guard Peterson safe up to bound 12")
	}
}

// The release annotation on the flag reset (line 6) is needed for
// correct hand-over on re-entry; at small bounds without re-entry the
// variant stays safe. Record empirically.
func TestPetersonResetAnnotationAblation(t *testing.T) {
	p, vars := PetersonRelaxedReset()
	res := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
		Property:  MutualExclusion,
	})
	if res.Violation != nil {
		t.Log("relaxed-reset Peterson violated mutual exclusion at bound 12")
	} else {
		t.Log("relaxed-reset Peterson safe up to bound 12")
	}
}

// Parallel and serial exploration agree on explored counts and
// verdicts.
func TestParallelSerialAgree(t *testing.T) {
	p, vars := Peterson()
	serial := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 10, Workers: 1,
	})
	parallel := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 10, Workers: 4,
	})
	if serial.Explored != parallel.Explored {
		t.Fatalf("explored: serial %d, parallel %d", serial.Explored, parallel.Explored)
	}
	if serial.Terminated != parallel.Terminated {
		t.Fatalf("terminated: serial %d, parallel %d", serial.Terminated, parallel.Terminated)
	}
}

// Every reachable Peterson state is axiomatically valid (Theorem 4.4
// on a program with loops and updates).
func TestPetersonSoundness(t *testing.T) {
	p, vars := Peterson()
	checked := 0
	explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 9,
		Property: func(c model.Config) bool {
			checked++
			if checked%17 == 0 { // sample: full validation is O(n³) per state
				if v := axiomatic.FromState(c.(core.Config).S).Check(); v != nil {
					t.Fatalf("reachable state invalid: %v", v)
				}
			}
			return true
		},
	})
	if checked == 0 {
		t.Fatal("nothing explored")
	}
}

func TestPetersonProgShape(t *testing.T) {
	p, vars := Peterson()
	if len(p) != 2 {
		t.Fatal("Peterson must have two threads")
	}
	if vars["turn"] != 1 || len(vars) != 3 {
		t.Fatalf("init = %v", vars)
	}
	// Thread 1 swaps turn to 2, thread 2 swaps to 1.
	if !strings.Contains(p[0].String(), "turn.swap(2)^RA") ||
		!strings.Contains(p[1].String(), "turn.swap(1)^RA") {
		t.Fatalf("swap values wrong:\n%s\n%s", p[0], p[1])
	}
	if lang.AtLabel(p[0]) != "" {
		t.Fatal("program must not start at the cs label")
	}
}

func BenchmarkPetersonExploreSerial(b *testing.B) {
	p, vars := Peterson()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := explore.Run(core.NewConfig(p, vars), explore.Options{
			MaxEvents: 9, Workers: 1, Property: MutualExclusion,
		})
		if res.Violation != nil {
			b.Fatal("violation")
		}
	}
}

func BenchmarkPetersonExploreParallel(b *testing.B) {
	p, vars := Peterson()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := explore.Run(core.NewConfig(p, vars), explore.Options{
			MaxEvents: 9, Property: MutualExclusion,
		})
		if res.Violation != nil {
			b.Fatal("violation")
		}
	}
}

func BenchmarkLitmusSuite(b *testing.B) {
	suite := Suite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, tc := range suite {
			if rep := tc.Run(explore.Options{MaxEvents: 20}); !rep.Pass() {
				b.Fatalf("%s failed", tc.Name)
			}
		}
	}
}
