package litmus

import (
	"bytes"
	"testing"

	"repro/internal/event"
	"repro/internal/lang"
)

// TestSigIdentity: the signature separates every test in the catalog,
// ignores the name, and reacts to each semantic component.
func TestSigIdentity(t *testing.T) {
	seen := map[string]string{}
	for _, tc := range Suite() {
		sig := string(tc.AppendSig(nil))
		if prev, dup := seen[sig]; dup {
			t.Fatalf("catalog tests %s and %s share a signature", prev, tc.Name)
		}
		seen[sig] = tc.Name
	}

	base := func() *Test {
		return &Test{
			Name: "base",
			Prog: lang.Prog{
				lang.AssignC("x", lang.V(1)),
				lang.AssignC("a", lang.X("x")),
			},
			Init:      map[event.Var]event.Val{"x": 0, "a": 0},
			Observe:   []event.Var{"a"},
			Allowed:   []Outcome{{"a": 0}, {"a": 1}},
			Forbidden: []Outcome{{"a": 2}},
			MaxEvents: 10,
		}
	}
	ref := base().AppendSig(nil)

	renamed := base()
	renamed.Name = "renamed"
	if !bytes.Equal(renamed.AppendSig(nil), ref) {
		t.Fatal("renaming a test changed its signature")
	}

	// Expectation order is canonicalised away.
	reordered := base()
	reordered.Allowed = []Outcome{{"a": 1}, {"a": 0}}
	if !bytes.Equal(reordered.AppendSig(nil), ref) {
		t.Fatal("reordering the allowed set changed the signature")
	}

	mutations := map[string]func(*Test){
		"program":      func(tc *Test) { tc.Prog[0] = lang.AssignRelC("x", lang.V(1)) },
		"cas":          func(tc *Test) { tc.Prog[0] = lang.CasStmtC("x", lang.V(0), lang.V(1)) },
		"idxload":      func(tc *Test) { tc.Prog[1] = lang.AssignC("a", lang.XAt("x", lang.X("i"))) },
		"init":         func(tc *Test) { tc.Init["x"] = 1 },
		"init-cell":    func(tc *Test) { tc.Init[lang.Cell("x", 0)] = 0 },
		"observe":      func(tc *Test) { tc.Observe = []event.Var{"a", "x"} },
		"observe-cell": func(tc *Test) { tc.Observe = []event.Var{lang.Cell("a", 1)} },
		"allowed":      func(tc *Test) { tc.Allowed = tc.Allowed[:1] },
		"forbidden":    func(tc *Test) { tc.Forbidden = nil },
		"sc-allowed":   func(tc *Test) { tc.SCAllowed = []Outcome{{"a": 1}} },
		"sc-forbidden": func(tc *Test) { tc.SCForbidden = []Outcome{{"a": 0}} },
		"maxevents":    func(tc *Test) { tc.MaxEvents = 11 },
	}
	for name, mutate := range mutations {
		tc := base()
		mutate(tc)
		if bytes.Equal(tc.AppendSig(nil), ref) {
			t.Errorf("mutating %s did not change the signature", name)
		}
	}
}
