// Package telemetry is the observability layer of the checker: a
// lock-free striped metrics registry the engine and the verification
// service feed (metrics.go), Prometheus-style text exposition of its
// snapshots (prometheus.go), a structured JSONL search tracer with a
// Chrome trace_event converter (trace.go, chrome.go), and a live
// progress reporter for the CLIs (progress.go).
//
// Everything is nil-safe by design: a nil *Registry, *Cell, *Tracer or
// *Reporter accepts every method call and does nothing, so the engine
// threads telemetry through its hot path unconditionally and the
// disabled configuration costs only nil checks — no allocations, no
// atomics. The perfgate CI job holds that line.
package telemetry
