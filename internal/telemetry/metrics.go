package telemetry

// The metrics registry. Counters are striped: each worker owns a
// padded cell of plain atomic counters, so concurrent increments from
// different workers never contend on a cache line, and a snapshot
// sums the stripes. Everything is preallocated at construction — Add
// and Cell never allocate, which is what lets the engine keep its
// zero-allocs-per-state guarantee with metrics enabled.

import (
	"sort"
	"sync/atomic"
)

// Counter indexes a counter within a Schema (the schema's Counters
// slice order). Gauge likewise.
type Counter int

// Gauge indexes a gauge within a Schema.
type Gauge int

// Schema names a registry's counters and gauges. Names are
// snake_case; they become Prometheus metric names (counters get a
// _total suffix on exposition).
type Schema struct {
	Counters []string
	Gauges   []string
}

// numStripes is the number of independent counter cells. Workers
// above the stripe count share cells (atomics keep that correct, it
// merely reintroduces some contention).
const numStripes = 16

// cacheLineWords pads each stripe to a cache-line multiple so two
// stripes never share a line (64 bytes = 8 uint64 words).
const cacheLineWords = 8

// Cell is one stripe's counter view. Increments on distinct cells
// are contention-free. The zero of *Cell (nil) discards all adds.
type Cell struct {
	counts []atomic.Uint64
}

// Add increments counter ctr by d. Nil-safe: a nil cell does nothing.
func (c *Cell) Add(ctr Counter, d uint64) {
	if c == nil {
		return
	}
	c.counts[ctr].Add(d)
}

// Get reads this cell's (not the registry-wide) value of ctr.
func (c *Cell) Get(ctr Counter) uint64 {
	if c == nil {
		return 0
	}
	return c.counts[ctr].Load()
}

// Registry is a set of striped counters plus gauges, all
// preallocated. Construct with New; the zero value and nil are both
// inert (every method is nil-safe).
type Registry struct {
	schema Schema
	stride int
	counts []atomic.Uint64 // numStripes * stride, cache-line padded
	gauges []atomic.Int64
	cells  [numStripes]Cell
}

// New builds a registry for the given schema. The schema is copied;
// all storage is allocated up front.
func New(s Schema) *Registry {
	r := &Registry{
		schema: Schema{
			Counters: append([]string(nil), s.Counters...),
			Gauges:   append([]string(nil), s.Gauges...),
		},
	}
	n := len(r.schema.Counters)
	r.stride = (n + cacheLineWords - 1) / cacheLineWords * cacheLineWords
	if r.stride == 0 {
		r.stride = cacheLineWords
	}
	r.counts = make([]atomic.Uint64, numStripes*r.stride)
	r.gauges = make([]atomic.Int64, len(r.schema.Gauges))
	for i := range r.cells {
		r.cells[i] = Cell{counts: r.counts[i*r.stride : i*r.stride+n]}
	}
	return r
}

// Schema returns the registry's schema (shared slices; do not mutate).
func (r *Registry) Schema() Schema {
	if r == nil {
		return Schema{}
	}
	return r.schema
}

// Cell returns worker i's counter cell. Workers beyond the stripe
// count share cells. Nil-safe: a nil registry yields a nil cell,
// which discards adds.
func (r *Registry) Cell(i int) *Cell {
	if r == nil {
		return nil
	}
	if i < 0 {
		i = 0
	}
	return &r.cells[i%numStripes]
}

// Add increments ctr by d on stripe 0 — the convenience path for
// cold call sites without a worker identity. Nil-safe.
func (r *Registry) Add(ctr Counter, d uint64) {
	if r == nil {
		return
	}
	r.cells[0].counts[ctr].Add(d)
}

// Total sums ctr across all stripes. Nil-safe (returns 0).
func (r *Registry) Total(ctr Counter) uint64 {
	if r == nil {
		return 0
	}
	var t uint64
	for i := 0; i < numStripes; i++ {
		t += r.counts[i*r.stride+int(ctr)].Load()
	}
	return t
}

// SetGauge stores v as gauge g's current value. Nil-safe.
func (r *Registry) SetGauge(g Gauge, v int64) {
	if r == nil {
		return
	}
	r.gauges[g].Store(v)
}

// MaxGauge raises gauge g to v if v is larger (atomic maximum).
// Nil-safe.
func (r *Registry) MaxGauge(g Gauge, v int64) {
	if r == nil {
		return
	}
	for {
		cur := r.gauges[g].Load()
		if v <= cur || r.gauges[g].CompareAndSwap(cur, v) {
			return
		}
	}
}

// GaugeValue reads gauge g. Nil-safe (returns 0).
func (r *Registry) GaugeValue(g Gauge) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[g].Load()
}

// Snapshot is a point-in-time aggregation of a registry: counter
// totals summed across stripes plus gauge values, in schema order.
// Concurrent increments during the snapshot land in either the
// snapshot or the next one — each counter read is atomic.
type Snapshot struct {
	CounterNames []string
	CounterVals  []uint64
	GaugeNames   []string
	GaugeVals    []int64
}

// Snapshot aggregates the registry. Nil-safe (returns an empty
// snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		CounterNames: r.schema.Counters,
		CounterVals:  make([]uint64, len(r.schema.Counters)),
		GaugeNames:   r.schema.Gauges,
		GaugeVals:    make([]int64, len(r.schema.Gauges)),
	}
	for c := range s.CounterVals {
		s.CounterVals[c] = r.Total(Counter(c))
	}
	for g := range s.GaugeVals {
		s.GaugeVals[g] = r.gauges[g].Load()
	}
	return s
}

// Counter returns the snapshot's value for the named counter (0 if
// absent).
func (s Snapshot) Counter(name string) uint64 {
	for i, n := range s.CounterNames {
		if n == name {
			return s.CounterVals[i]
		}
	}
	return 0
}

// Gauge returns the snapshot's value for the named gauge (0 if
// absent).
func (s Snapshot) Gauge(name string) int64 {
	for i, n := range s.GaugeNames {
		if n == name {
			return s.GaugeVals[i]
		}
	}
	return 0
}

// Counters returns the snapshot's counters as a name→value map, in
// no particular order (use CounterNames for schema order).
func (s Snapshot) Counters() map[string]uint64 {
	m := make(map[string]uint64, len(s.CounterNames))
	for i, n := range s.CounterNames {
		m[n] = s.CounterVals[i]
	}
	return m
}

// SortedCounterNames returns the counter names sorted
// lexicographically — the exposition order used by WritePrometheus.
func (s Snapshot) SortedCounterNames() []string {
	out := append([]string(nil), s.CounterNames...)
	sort.Strings(out)
	return out
}
