package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryStripedTotals(t *testing.T) {
	r := NewEngineRegistry()
	// 8 workers hammer distinct cells plus the shared stripe-0
	// convenience path; the snapshot must equal the serial ground
	// truth exactly.
	const workers = 8
	const perWorker = 100_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cell := r.Cell(w)
			for i := 0; i < perWorker; i++ {
				cell.Add(EngineExpansions, 1)
				cell.Add(EngineSuccessors, 3)
				if i%10 == 0 {
					r.Add(EngineDedupHits, 1)
				}
				r.MaxGauge(EngineGaugeDepth, int64(w*perWorker+i))
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got, want := snap.Counter("expansions"), uint64(workers*perWorker); got != want {
		t.Errorf("expansions = %d, want %d", got, want)
	}
	if got, want := snap.Counter("successors"), uint64(workers*perWorker*3); got != want {
		t.Errorf("successors = %d, want %d", got, want)
	}
	if got, want := snap.Counter("dedup_hits"), uint64(workers*perWorker/10); got != want {
		t.Errorf("dedup_hits = %d, want %d", got, want)
	}
	if got, want := snap.Gauge("max_depth"), int64(workers*perWorker-1); got != want {
		t.Errorf("max_depth = %d, want %d", got, want)
	}
	if got := r.Total(EngineExpansions); got != uint64(workers*perWorker) {
		t.Errorf("Total(EngineExpansions) = %d", got)
	}
}

func TestRegistryCellSharing(t *testing.T) {
	r := New(Schema{Counters: []string{"x"}})
	// Workers beyond the stripe count wrap onto existing cells; the
	// totals must still be exact.
	for w := 0; w < 3*numStripes; w++ {
		r.Cell(w).Add(0, 1)
	}
	if got := r.Total(0); got != 3*numStripes {
		t.Fatalf("Total = %d, want %d", got, 3*numStripes)
	}
	if r.Cell(-1) != r.Cell(0) {
		t.Error("negative worker id should map to cell 0")
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Add(EngineExpansions, 1)
	r.SetGauge(EngineGaugeFrontier, 5)
	r.MaxGauge(EngineGaugeDepth, 5)
	if r.Total(EngineExpansions) != 0 || r.GaugeValue(EngineGaugeDepth) != 0 {
		t.Error("nil registry should read as zero")
	}
	cell := r.Cell(3)
	if cell != nil {
		t.Error("nil registry should yield nil cell")
	}
	cell.Add(EngineExpansions, 1) // must not panic
	if cell.Get(EngineExpansions) != 0 {
		t.Error("nil cell should read as zero")
	}
	snap := r.Snapshot()
	if len(snap.CounterNames) != 0 || snap.Counter("expansions") != 0 {
		t.Error("nil registry snapshot should be empty")
	}

	var tr *Tracer
	tr.Begin("x", 0)
	tr.End("x", 0, nil)
	tr.Instant("x", 0, nil)
	tr.Count("x", 0, nil)
	if tr.Flush() != nil || tr.Close() != nil || tr.Err() != nil {
		t.Error("nil tracer methods should be no-ops")
	}

	var rep *Reporter
	rep.Start()
	rep.Stop()
}

func TestRegistryAddAllocFree(t *testing.T) {
	r := NewEngineRegistry()
	cell := r.Cell(1)
	allocs := testing.AllocsPerRun(1000, func() {
		cell.Add(EngineExpansions, 1)
		r.Add(EngineDedupHits, 1)
		r.MaxGauge(EngineGaugeDepth, 7)
		r.SetGauge(EngineGaugeFrontier, 3)
	})
	if allocs != 0 {
		t.Fatalf("registry hot path allocates: %v allocs/run", allocs)
	}
	// The disabled path (nil receivers) must also be alloc-free.
	var nilReg *Registry
	nilCell := nilReg.Cell(0)
	allocs = testing.AllocsPerRun(1000, func() {
		nilCell.Add(EngineExpansions, 1)
		nilReg.MaxGauge(EngineGaugeDepth, 7)
	})
	if allocs != 0 {
		t.Fatalf("nil registry path allocates: %v allocs/run", allocs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New(Schema{Counters: []string{"beta", "alpha"}, Gauges: []string{"g"}})
	r.Add(0, 2) // beta
	r.Add(1, 5) // alpha
	r.SetGauge(0, -3)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, "test"); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE test_alpha_total counter\n" +
		"test_alpha_total 5\n" +
		"# TYPE test_beta_total counter\n" +
		"test_beta_total 2\n" +
		"# TYPE test_g gauge\n" +
		"test_g -3\n"
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

func TestEngineSchemaConsistency(t *testing.T) {
	s := EngineSchema()
	if len(s.Counters) != int(numEngineCounters) {
		t.Fatalf("engine schema has %d counter names for %d counters", len(s.Counters), numEngineCounters)
	}
	if len(s.Gauges) != int(numEngineGauges) {
		t.Fatalf("engine schema has %d gauge names for %d gauges", len(s.Gauges), numEngineGauges)
	}
	seen := map[string]bool{}
	for i, n := range s.Counters {
		if n == "" {
			t.Fatalf("counter %d has no name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
}
