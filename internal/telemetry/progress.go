package telemetry

// The live progress reporter: a goroutine that samples the search
// every interval and prints one explored/frontier/depth/rate line to
// a writer (the CLIs point it at stderr). Stop emits a final line, so
// even a search shorter than the interval produces at least one.

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Sample is one progress observation, usually read off an engine
// registry.
type Sample struct {
	Explored   int64
	Terminated int64
	Frontier   int64
	Depth      int64
}

// Reporter periodically prints progress lines. Construct with
// NewReporter, then Start; Stop prints the final line and waits for
// the goroutine to exit. Nil-safe.
type Reporter struct {
	w        io.Writer
	interval time.Duration
	sample   func() Sample

	mu      sync.Mutex
	started bool
	stopped bool
	stop    chan struct{}
	done    chan struct{}
	start   time.Time
	last    Sample
	lastAt  time.Time
}

// NewReporter builds a reporter that samples via sample every
// interval and writes lines to w. A non-positive interval defaults
// to one second.
func NewReporter(w io.Writer, interval time.Duration, sample func() Sample) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	return &Reporter{w: w, interval: interval, sample: sample}
}

// Start launches the reporting goroutine. Nil-safe; idempotent.
func (r *Reporter) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	r.start = time.Now()
	r.lastAt = r.start
	go r.loop()
}

func (r *Reporter) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.emit(false)
		case <-r.stop:
			return
		}
	}
}

// emit prints one progress line; final marks the end-of-run line.
func (r *Reporter) emit(final bool) {
	now := time.Now()
	s := r.sample()

	r.mu.Lock()
	dt := now.Sub(r.lastAt).Seconds()
	var rate float64
	if dt > 0 {
		rate = float64(s.Explored-r.last.Explored) / dt
	}
	r.last = s
	r.lastAt = now
	elapsed := now.Sub(r.start)
	r.mu.Unlock()

	tag := "progress"
	if final {
		tag = "progress(final)"
		// The per-tick rate of a final partial tick is noise; report
		// the whole-run average instead.
		if sec := elapsed.Seconds(); sec > 0 {
			rate = float64(s.Explored) / sec
		}
	}
	fmt.Fprintf(r.w, "%s: explored=%d frontier=%d depth=%d terminated=%d states/s=%.0f elapsed=%s\n",
		tag, s.Explored, s.Frontier, s.Depth, s.Terminated, rate, elapsed.Round(time.Millisecond))
}

// Stop halts the goroutine and prints the final line (so at least one
// line is always produced). Nil-safe; idempotent.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
	r.emit(true)
}
