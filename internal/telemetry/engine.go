package telemetry

// The engine metric schema, shared by the exploration engine (which
// feeds it), the CLIs (which sample it for progress lines and final
// summaries) and the verification service (which exposes it at
// /metrics). The Counter/Gauge constants below index EngineSchema in
// declaration order — keep the two lists in lockstep.

// Engine counters, in EngineSchema order.
const (
	// EngineExpansions counts configurations expanded (claims that
	// reached the successor loop).
	EngineExpansions Counter = iota
	// EngineSuccessors counts successor configurations generated,
	// including ones later deduplicated, suppressed or discarded.
	EngineSuccessors
	// EngineAdmitted counts distinct configurations admitted to the
	// seen set (== Result.Explored for a fresh run).
	EngineAdmitted
	// EngineTerminated counts admitted configurations with every
	// thread terminated (== Result.Terminated for a fresh run).
	EngineTerminated
	// EngineDedupHits counts successors that deduplicated against the
	// fingerprint seen set.
	EngineDedupHits
	// EngineRequeues counts re-queues caused by depth or sleep-mask
	// relaxation of an already-expanded entry.
	EngineRequeues
	// EnginePORPruned counts enabled program steps the partial-order
	// reduction skipped (persistent-set exclusion or sleep set).
	EnginePORPruned
	// EngineBoundSuppressed counts successors suppressed by the
	// progress bound (memory steps at the bound).
	EngineBoundSuppressed
	// EngineDiscards counts successors handed back to the backend's
	// arena/free-list for recycling (dedup without re-queue, bound
	// suppression, budget rejection).
	EngineDiscards
	// EnginePoolClaims counts items workers pulled from the shared
	// work pool.
	EnginePoolClaims
	// EngineStaleClaims counts pool items that were already expanded
	// at their best depth/sleep when claimed (stale re-queues).
	EngineStaleClaims
	// EngineCheckpointWrites counts checkpoints successfully written.
	EngineCheckpointWrites
	// EnginePanics counts worker panics isolated into PanicRecords.
	EnginePanics

	numEngineCounters // keep last
)

// Engine gauges, in EngineSchema order.
const (
	// EngineGaugeFrontier is the live work-pool pending count (queued
	// plus in-flight items).
	EngineGaugeFrontier Gauge = iota
	// EngineGaugeDepth is the maximum depth admitted so far.
	EngineGaugeDepth

	numEngineGauges // keep last
)

var engineCounterNames = [numEngineCounters]string{
	EngineExpansions:       "expansions",
	EngineSuccessors:       "successors",
	EngineAdmitted:         "states_admitted",
	EngineTerminated:       "states_terminated",
	EngineDedupHits:        "dedup_hits",
	EngineRequeues:         "requeues",
	EnginePORPruned:        "por_pruned_steps",
	EngineBoundSuppressed:  "bound_suppressed",
	EngineDiscards:         "arena_discards",
	EnginePoolClaims:       "pool_claims",
	EngineStaleClaims:      "stale_claims",
	EngineCheckpointWrites: "checkpoint_writes",
	EnginePanics:           "panics_isolated",
}

var engineGaugeNames = [numEngineGauges]string{
	EngineGaugeFrontier: "frontier",
	EngineGaugeDepth:    "max_depth",
}

// EngineSchema returns the engine metric schema.
func EngineSchema() Schema {
	return Schema{
		Counters: engineCounterNames[:],
		Gauges:   engineGaugeNames[:],
	}
}

// NewEngineRegistry builds a registry with the engine schema — the
// value to hand to explore.Options.Metrics.
func NewEngineRegistry() *Registry {
	return New(EngineSchema())
}
