package telemetry

// The search tracer: structured JSONL records of search lifecycle
// (one JSON object per line), written through a buffered writer under
// a mutex. Records carry a relative microsecond timestamp, a record
// type (span begin/end, instant event, counter sample), a name, the
// worker id (-1 for engine-level records) and free-form args.
// chrome.go converts the stream to Chrome trace_event format.
//
// The tracer is deliberately coarse: the engine emits lifecycle spans
// and periodic batch samples, never per-successor records, so tracing
// a large search stays cheap and the output stays loadable.

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one trace line.
type Record struct {
	// TS is microseconds since the tracer was created.
	TS int64 `json:"ts_us"`
	// Type is "begin" or "end" (a span), "instant" (a point event) or
	// "counter" (a periodic sample carried in Args).
	Type string `json:"type"`
	// Name identifies the span/event ("search", "worker",
	// "checkpoint", "stop", ...).
	Name string `json:"name"`
	// Worker is the emitting worker id; -1 for engine-level records.
	Worker int `json:"worker"`
	// Args carries record-specific values.
	Args map[string]any `json:"args,omitempty"`
}

// Tracer writes Records as JSONL. All methods are safe for
// concurrent use and nil-safe: a nil tracer discards everything, so
// the engine calls it unconditionally.
type Tracer struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	cl    io.Closer
	start time.Time
	now   func() time.Time // test seam for deterministic timestamps
	err   error
}

// NewTracer writes records to w. If w is an io.Closer, Close closes
// it.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	t := &Tracer{bw: bw, enc: json.NewEncoder(bw), now: time.Now}
	t.start = t.now()
	if c, ok := w.(io.Closer); ok {
		t.cl = c
	}
	return t
}

// OpenTracer creates (truncating) path and traces into it.
func OpenTracer(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Emit writes one record, stamping TS if it is zero. Nil-safe.
func (t *Tracer) Emit(rec Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if rec.TS == 0 {
		rec.TS = t.now().Sub(t.start).Microseconds()
	}
	if err := t.enc.Encode(rec); err != nil {
		t.err = err
	}
}

// Begin opens a span. Nil-safe.
func (t *Tracer) Begin(name string, worker int) {
	t.Emit(Record{Type: "begin", Name: name, Worker: worker})
}

// End closes a span, attaching args (may be nil). Nil-safe.
func (t *Tracer) End(name string, worker int, args map[string]any) {
	t.Emit(Record{Type: "end", Name: name, Worker: worker, Args: args})
}

// Instant records a point event. Nil-safe.
func (t *Tracer) Instant(name string, worker int, args map[string]any) {
	t.Emit(Record{Type: "instant", Name: name, Worker: worker, Args: args})
}

// Count records a counter sample; args maps series names to values.
// Nil-safe.
func (t *Tracer) Count(name string, worker int, args map[string]any) {
	t.Emit(Record{Type: "counter", Name: name, Worker: worker, Args: args})
}

// Flush flushes buffered records to the underlying writer. Nil-safe.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes and closes the underlying writer (when it is
// closeable), returning the first error the tracer hit. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.flushLocked()
	if t.cl != nil {
		if cerr := t.cl.Close(); cerr != nil && err == nil {
			err = cerr
		}
		t.cl = nil
	}
	return err
}

// Err returns the first write error the tracer hit, if any. Nil-safe.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
