package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClockTracer returns a tracer whose clock advances 100µs per
// reading, so emitted timestamps are deterministic.
func fixedClockTracer(w *bytes.Buffer) *Tracer {
	base := time.Unix(0, 0)
	n := 0
	tr := &Tracer{}
	*tr = *NewTracer(w)
	tr.now = func() time.Time {
		n++
		return base.Add(time.Duration(n) * 100 * time.Microsecond)
	}
	tr.start = base
	return tr
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// emitFixture writes the representative trace used by both goldens:
// a search span wrapping two worker spans, a checkpoint instant, a
// counter sample and a stop instant.
func emitFixture(tr *Tracer) {
	tr.Begin("search", -1)
	tr.Begin("worker", 0)
	tr.Begin("worker", 1)
	tr.Count("expansion_batch", 0, map[string]any{"expansions": 1024, "explored": 2048})
	tr.Instant("checkpoint", -1, map[string]any{"entries": 512, "frontier": 7})
	tr.Instant("stop", -1, map[string]any{"cause": "deadline"})
	tr.End("worker", 1, nil)
	tr.End("worker", 0, nil)
	tr.End("search", -1, map[string]any{"explored": 2048, "verdict": "BOUNDED"})
}

func TestTraceGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := fixedClockTracer(&buf)
	emitFixture(tr)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Schema check: every line decodes into a Record with the
	// required fields.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if rec.Type == "" || rec.Name == "" {
			t.Fatalf("line %d: missing type/name: %s", i+1, line)
		}
	}
	golden(t, "trace.jsonl", buf.Bytes())
}

func TestTraceGoldenChrome(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "trace.jsonl"))
	if err != nil {
		if *update {
			// Regenerate the JSONL golden first, then convert it.
			var buf bytes.Buffer
			tr := fixedClockTracer(&buf)
			emitFixture(tr)
			if err := tr.Flush(); err != nil {
				t.Fatal(err)
			}
			data = buf.Bytes()
		} else {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
	}
	var out bytes.Buffer
	if err := ConvertChrome(bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	// The conversion must be loadable Chrome trace format: a JSON
	// object with a traceEvents array whose entries carry ph/ts/pid.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("conversion is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("traceEvents = %d entries, want 9", len(doc.TraceEvents))
	}
	begins, ends := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		case "i", "C":
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
		if _, ok := ev["ts"]; !ok {
			t.Error("event without ts")
		}
	}
	if begins != 3 || ends != 3 {
		t.Errorf("span balance: %d begins, %d ends", begins, ends)
	}
	golden(t, "trace_chrome.json", out.Bytes())
}

func TestConvertChromeRejectsUnknownType(t *testing.T) {
	in := strings.NewReader(`{"ts_us":1,"type":"bogus","name":"x","worker":0}` + "\n")
	if err := ConvertChrome(in, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown record type should be rejected")
	}
}

func TestConvertChromeToleratesTruncatedTail(t *testing.T) {
	// A killed process may leave a half-written last line; conversion
	// keeps everything before it.
	in := strings.NewReader(`{"ts_us":1,"type":"begin","name":"search","worker":-1}` + "\n" + `{"ts_us":2,"ty`)
	var out bytes.Buffer
	if err := ConvertChrome(in, &out); err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("traceEvents = %d, want 1", len(doc.TraceEvents))
	}
	// But a malformed line in the middle is a real error.
	in2 := strings.NewReader(`{"ts_us":2,"ty` + "\n" + `{"ts_us":1,"type":"begin","name":"search","worker":-1}` + "\n")
	if err := ConvertChrome(in2, &bytes.Buffer{}); err == nil {
		t.Fatal("mid-stream corruption should be rejected")
	}
}

func TestReporterEmitsLines(t *testing.T) {
	var mu syncBuffer
	var n int64
	rep := NewReporter(&mu, 10*time.Millisecond, func() Sample {
		n += 100
		return Sample{Explored: n, Terminated: n / 2, Frontier: 3, Depth: 9}
	})
	rep.Start()
	time.Sleep(35 * time.Millisecond)
	rep.Stop()
	rep.Stop() // idempotent
	out := mu.String()
	if !strings.Contains(out, "progress: explored=") {
		t.Fatalf("no periodic progress line in %q", out)
	}
	if !strings.Contains(out, "progress(final): explored=") {
		t.Fatalf("no final progress line in %q", out)
	}
	if !strings.Contains(out, "frontier=3") || !strings.Contains(out, "depth=9") {
		t.Fatalf("sample fields missing in %q", out)
	}
}

func TestReporterFinalLineWithoutTick(t *testing.T) {
	// A run shorter than the interval still yields the final line.
	var mu syncBuffer
	rep := NewReporter(&mu, time.Hour, func() Sample { return Sample{Explored: 42} })
	rep.Start()
	rep.Stop()
	if !strings.Contains(mu.String(), "progress(final): explored=42") {
		t.Fatalf("missing final line: %q", mu.String())
	}
}

// syncBuffer is a goroutine-safe strings.Builder for reporter output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
