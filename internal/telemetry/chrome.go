package telemetry

// Conversion of the JSONL trace stream to Chrome trace_event format
// (the JSON object form: {"traceEvents": [...]}), loadable in
// chrome://tracing and Perfetto. Spans map to B/E duration events,
// instants to i, counter samples to C; the worker id becomes the tid
// (engine-level records land on tid 0, where they nest correctly
// around the worker spans).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ConvertChrome reads JSONL trace records from r and writes the
// Chrome trace_event JSON object to w. Unknown record types are an
// error (the schema is versioned by this converter); blank lines are
// skipped. A partially written final line (a killed process) is
// tolerated if it is the last line.
func ConvertChrome(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []chromeEvent
	lineno := 0
	var pendingErr error
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the final one — real error.
			return pendingErr
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("trace line %d: %v", lineno, err)
			continue
		}
		ev := chromeEvent{Name: rec.Name, TS: rec.TS, PID: 1, TID: rec.Worker, Args: rec.Args}
		if ev.TID < 0 {
			ev.TID = 0
		}
		switch rec.Type {
		case "begin":
			ev.Phase = "B"
		case "end":
			ev.Phase = "E"
		case "instant":
			ev.Phase = "i"
			ev.Scope = "t"
		case "counter":
			ev.Phase = "C"
		default:
			return fmt.Errorf("trace line %d: unknown record type %q", lineno, rec.Type)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{"traceEvents": events})
}
