package telemetry

// Prometheus text exposition (format version 0.0.4) of registry
// snapshots. Counters are exposed as <prefix>_<name>_total with
// # TYPE counter, gauges as <prefix>_<name> with # TYPE gauge, each
// family sorted by name so the output is deterministic and diffable.

import (
	"fmt"
	"io"
	"sort"
)

// PrometheusContentType is the Content-Type for text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the snapshot in Prometheus text exposition
// format, prefixing every metric name with prefix + "_".
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	type kv struct {
		name string
		val  string
	}
	counters := make([]kv, 0, len(s.CounterNames))
	for i, n := range s.CounterNames {
		counters = append(counters, kv{prefix + "_" + n + "_total", fmt.Sprintf("%d", s.CounterVals[i])})
	}
	gauges := make([]kv, 0, len(s.GaugeNames))
	for i, n := range s.GaugeNames {
		gauges = append(gauges, kv{prefix + "_" + n, fmt.Sprintf("%d", s.GaugeVals[i])})
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", c.name, c.name, c.val); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", g.name, g.name, g.val); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheusGauge writes one ad-hoc gauge in exposition format —
// for liveness values (uptime, queue occupancy) that are computed at
// scrape time rather than stored in a registry.
func WritePrometheusGauge(w io.Writer, name string, v float64) error {
	_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v)
	return err
}
