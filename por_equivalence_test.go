package repro

// Contract tests of the partial-order reduction (explore.Options.POR):
// the CheckPOR audit must report zero divergences — identical property
// verdicts, identical terminated-state fingerprint sets, and a reduced
// reachable set contained in the full one — across the whole testdata
// litmus suite on both engines; the serial and parallel engines must
// agree on the reduced search's statistics (the sleep-mask fixpoint is
// engine-order independent); the reduction must actually reduce (the
// acceptance bar: ≥ 30% fewer configurations on the Peterson
// verification workload at bound 10); and the broken Peterson variant's
// mutual-exclusion violation — a label-visible property — must still be
// found under reduction.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/litmus"
)

func TestCheckPORTestdata(t *testing.T) {
	for name, cfg := range testdataConfigs(t) {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				a := explore.CheckPOR(cfg, explore.Options{MaxEvents: 9, Workers: workers})
				if !a.SetsCompared {
					t.Fatalf("workers=%d: audit did not compare fingerprint sets", workers)
				}
				if n := a.Divergences(); n != 0 {
					t.Fatalf("workers=%d: %d divergences: %s", workers, n, a)
				}
				if a.Reduced.Explored > a.Full.Explored {
					t.Fatalf("workers=%d: reduced search explored more than full: %s", workers, a)
				}
			}
		})
	}
}

func TestPORSerialParallelEquivalenceLitmusSuite(t *testing.T) {
	for _, tc := range litmus.Suite() {
		t.Run(tc.Name, func(t *testing.T) {
			cfg := core.NewConfig(tc.Prog, tc.Init)
			s := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 1, POR: true})
			p := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 8, POR: true})
			if s.Explored != p.Explored || s.Terminated != p.Terminated ||
				s.Depth != p.Depth || s.Truncated != p.Truncated {
				t.Fatalf("serial %+v != parallel %+v", s, p)
			}
		})
	}
}

func TestPORReductionPeterson(t *testing.T) {
	p, vars := litmus.Peterson()
	a := explore.CheckPOR(core.NewConfig(p, vars), explore.Options{MaxEvents: 10, Workers: 1})
	if n := a.Divergences(); n != 0 {
		t.Fatalf("%d divergences: %s", n, a)
	}
	// The acceptance bar: at least 30% fewer configurations at bound 10.
	if limit := a.Full.Explored * 7 / 10; a.Reduced.Explored > limit {
		t.Fatalf("reduction too weak: reduced=%d > 70%% of full=%d",
			a.Reduced.Explored, a.Full.Explored)
	}
	t.Logf("%s", a)
}

func TestPORWeakTurnViolation(t *testing.T) {
	// Mutual exclusion observes the "cs" labels; the reduction treats
	// label-visible steps as dependent with everything, so the broken
	// variant must still be caught with POR on, on both engines.
	p, vars := litmus.PetersonWeakTurn()
	for _, workers := range []int{1, 8} {
		res := explore.Run(core.NewConfig(p, vars), explore.Options{
			MaxEvents: 12,
			Workers:   workers,
			POR:       true,
			Property:  litmus.MutualExclusion,
		})
		if res.Violation == nil {
			t.Fatalf("workers=%d: mutual-exclusion violation not found under POR", workers)
		}
		if litmus.MutualExclusion(*res.Violation) {
			t.Fatalf("workers=%d: reported violation does not falsify the property", workers)
		}
	}
}
