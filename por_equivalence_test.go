package repro

// Contract tests of the partial-order reduction (explore.Options.POR)
// over both memory-model backends: the CheckPOR audit must report
// zero divergences — identical property verdicts, identical
// terminated-state fingerprint sets, and a reduced reachable set
// contained in the full one — across the whole testdata litmus suite,
// serial and parallel, under RAR and under SC; the worker counts must
// agree on the reduced search's statistics (the sleep-mask fixpoint
// is engine-order independent); the reduction must actually reduce
// (the acceptance bar: ≥ 30% fewer configurations on the Peterson
// verification workload at bound 10); and the broken Peterson
// variant's mutual-exclusion violation — a label-visible property —
// must still be found under reduction. The SC backend additionally
// regression-tests the ignoring problem specific to models whose
// memory steps can close cycles: a private spin loop must not be
// chosen as a reducing singleton.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/model/backends"
	"repro/internal/sc"
)

func TestCheckPORTestdata(t *testing.T) {
	for name, cfg := range testdataConfigs(t) {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				a := explore.CheckPOR(cfg, explore.Options{MaxEvents: 9, Workers: workers})
				if !a.SetsCompared {
					t.Fatalf("workers=%d: audit did not compare fingerprint sets", workers)
				}
				if n := a.Divergences(); n != 0 {
					t.Fatalf("workers=%d: %d divergences: %s", workers, n, a)
				}
				if a.Reduced.Explored > a.Full.Explored {
					t.Fatalf("workers=%d: reduced search explored more than full: %s", workers, a)
				}
			}
		})
	}
}

// TestCheckPORTestdataSC is the same reduced-vs-full contract over
// the SC backend: reduced ⊆ full reachability, identical terminated
// sets and verdicts, zero divergences, on every testdata program,
// serial and parallel. SC state spaces are finite, so no MaxEvents
// bound is needed.
func TestCheckPORTestdataSC(t *testing.T) {
	m, err := backends.Get("sc")
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range testdataConfigs(t) {
		t.Run(name, func(t *testing.T) {
			scCfg := m.New(cfg.P, scInitOf(t, name))
			for _, workers := range []int{1, 8} {
				a := explore.CheckPOR(scCfg, explore.Options{Workers: workers})
				if !a.SetsCompared {
					t.Fatalf("workers=%d: audit did not compare fingerprint sets", workers)
				}
				if n := a.Divergences(); n != 0 {
					t.Fatalf("workers=%d: %d divergences: %s", workers, n, a)
				}
				if a.Reduced.Explored > a.Full.Explored {
					t.Fatalf("workers=%d: reduced explored more than full: %s", workers, a)
				}
			}
		})
	}
}

// scInitOf re-parses the testdata file to recover its init map (the
// RAR configs of testdataConfigs embed it in the C11 state).
func scInitOf(t *testing.T, name string) map[event.Var]event.Val {
	t.Helper()
	return parseFile(t, name).Init
}

func TestPORSerialParallelEquivalenceLitmusSuite(t *testing.T) {
	for _, m := range backends.All() {
		for _, tc := range litmus.Suite() {
			t.Run(m.Name()+"/"+tc.Name, func(t *testing.T) {
				cfg := m.New(tc.Prog, tc.Init)
				s := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 1, POR: true})
				p := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 8, POR: true})
				if s.Explored != p.Explored || s.Terminated != p.Terminated ||
					s.Depth != p.Depth || s.Truncated != p.Truncated {
					t.Fatalf("serial %+v != parallel %+v", s, p)
				}
			})
		}
	}
}

// TestPORDrainRegression pins the silent-drain fix the fuzzer forced:
// testdata/gen-por-drain.lit is a shrunk c11fuzz reproducer on which,
// before the fix, the reduced search missed terminated configurations
// at truncating bounds (11 and 13 among the ones below) — their final
// silent steps were frozen at the progress bound in the reduced
// representative order but not in some full-search order. With
// at-bound silent draining the audit must be clean at every bound,
// serial and parallel.
func TestPORDrainRegression(t *testing.T) {
	cfg, ok := testdataConfigs(t)["gen-por-drain.lit"]
	if !ok {
		t.Fatal("testdata/gen-por-drain.lit missing")
	}
	for bound := 6; bound <= 16; bound++ {
		for _, workers := range []int{1, 4} {
			a := explore.CheckPOR(cfg, explore.Options{MaxEvents: bound, Workers: workers})
			if !a.SetsCompared {
				t.Fatalf("bound=%d workers=%d: sets not compared", bound, workers)
			}
			if n := a.Divergences(); n != 0 {
				t.Fatalf("bound=%d workers=%d: %d divergences: %s", bound, workers, n, a)
			}
		}
	}
}

func TestPORReductionPeterson(t *testing.T) {
	p, vars := litmus.Peterson()
	a := explore.CheckPOR(core.NewConfig(p, vars), explore.Options{MaxEvents: 10, Workers: 1})
	if n := a.Divergences(); n != 0 {
		t.Fatalf("%d divergences: %s", n, a)
	}
	// The acceptance bar: at least 30% fewer configurations at bound 10.
	if limit := a.Full.Explored * 7 / 10; a.Reduced.Explored > limit {
		t.Fatalf("reduction too weak: reduced=%d > 70%% of full=%d",
			a.Reduced.Explored, a.Full.Explored)
	}
	t.Logf("%s", a)
}

func TestPORReductionPetersonSC(t *testing.T) {
	p, vars := litmus.Peterson()
	a := explore.CheckPOR(sc.NewConfig(p, vars), explore.Options{Workers: 1})
	if n := a.Divergences(); n != 0 {
		t.Fatalf("%d divergences: %s", n, a)
	}
	if a.Reduced.Explored > a.Full.Explored {
		t.Fatalf("reduced=%d > full=%d", a.Reduced.Explored, a.Full.Explored)
	}
	t.Logf("%s", a)
}

func TestPORWeakTurnViolation(t *testing.T) {
	// Mutual exclusion observes the "cs" labels; the reduction treats
	// label-visible steps as dependent with everything, so the broken
	// variant must still be caught with POR on, at every worker count.
	p, vars := litmus.PetersonWeakTurn()
	for _, workers := range []int{1, 8} {
		res := explore.Run(core.NewConfig(p, vars), explore.Options{
			MaxEvents: 12,
			Workers:   workers,
			POR:       true,
			Property:  litmus.MutualExclusion,
		})
		if res.Violation == nil {
			t.Fatalf("workers=%d: mutual-exclusion violation not found under POR", workers)
		}
		if litmus.MutualExclusion(res.Violation) {
			t.Fatalf("workers=%d: reported violation does not falsify the property", workers)
		}
	}
}

// TestPORSCSpinLoopNotIgnored regression-tests the SC-specific
// ignoring problem: a thread spinning on a variable no other thread
// touches conflictingly cycles through the same (program, store)
// configurations, so reducing to it as a memory-step singleton would
// postpone the other threads forever and lose their terminated
// states. The loop-freedom guard must keep the search complete.
func TestPORSCSpinLoopNotIgnored(t *testing.T) {
	prog := lang.Prog{
		// Spins forever: x is never written by anyone.
		lang.WhileC(lang.Eq(lang.X("x"), lang.V(0)), lang.SkipC()),
		// Must still reach its terminated residual and the cs label.
		lang.SeqC(
			lang.AssignC("y", lang.V(1)),
			lang.LabelC("cs", lang.AssignC("y", lang.V(2))),
		),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0}
	cfg := sc.NewConfig(prog, vars)

	for _, workers := range []int{1, 8} {
		a := explore.CheckPOR(cfg, explore.Options{Workers: workers})
		if n := a.Divergences(); n != 0 {
			t.Fatalf("workers=%d: %d divergences: %s", workers, n, a)
		}
	}
	// The label must be observable under reduction.
	res := explore.Run(cfg, explore.Options{POR: true, Property: func(c model.Config) bool {
		return lang.AtLabel(c.Program().Thread(2)) != "cs"
	}})
	if res.Violation == nil {
		t.Fatal("label-visible state hidden by the reduction under SC")
	}
}
